"""Geographic point indexing — the paper's motivating application.

The introduction motivates the BMEH-tree with "relational, geographic,
pictorial and geometric databases that require extensive associative and
region searching".  This example builds a (longitude, latitude) index of
synthetic points-of-interest clustered around city centres — exactly the
non-uniform distribution that wrecks one-level directories — and runs
bounding-box queries.

Run:  python examples/geospatial_index.py
"""

import numpy as np

from repro import BMEHTree, MDEH, KeyCodec, ScaledFloatEncoder
from repro.core import MultiKeyFile
from repro.errors import DuplicateKeyError

CITIES = {
    "Ottawa": (-75.70, 45.42),
    "Zurich": (8.54, 47.37),
    "Singapore": (103.82, 1.35),
    "San Francisco": (-122.42, 37.77),
    "Nairobi": (36.82, -1.29),
    "Sydney": (151.21, -33.87),
}


def synthesize_pois(per_city: int = 1_200, seed: int = 1986):
    """Points of interest scattered around each city centre."""
    rng = np.random.default_rng(seed)
    pois = []
    for city, (lon, lat) in CITIES.items():
        lons = rng.normal(lon, 0.5, per_city)
        lats = rng.normal(lat, 0.35, per_city)
        for i, (x, y) in enumerate(zip(lons, lats)):
            pois.append(((float(x), float(y)), f"{city}/poi-{i}"))
    rng.shuffle(pois)
    return pois


def build_file(scheme):
    codec = KeyCodec(
        [
            ScaledFloatEncoder(-180.0, 180.0, width=22),
            ScaledFloatEncoder(-90.0, 90.0, width=22),
        ]
    )
    return MultiKeyFile(codec, page_capacity=16, scheme=scheme)


def load(geo, pois):
    for key, name in pois:
        try:
            geo.insert(key, name)
        except DuplicateKeyError:  # a rare exact-coordinate collision
            pass
    return geo


def main() -> None:
    pois = synthesize_pois()
    print(f"{len(pois)} points of interest around {len(CITIES)} cities\n")

    # Directory comparison on a sample: city clusters are *far* more
    # skewed than the paper's normal workload, and the one-level
    # directory pays for it so brutally (hundreds of times the balanced
    # tree's size, minutes of pointer rewriting at full scale) that we
    # feed it only a sample to make the point.
    sample = pois[: len(pois) // 6]
    print(f"directory sizes after {len(sample)} clustered insertions:")
    for scheme in (BMEHTree, MDEH):
        index = load(build_file(scheme), sample).index
        print(
            f"{scheme.__name__:>9}: σ = {index.directory_size:>8} "
            f"directory elements for {index.data_page_count} pages "
            f"(α = {index.load_factor:.2f})"
        )
    print(
        "\nThe clustered distribution blows the one-level directory up;"
        "\nthe balanced tree grows with the data instead.\n"
    )

    geo = load(build_file(BMEHTree), pois)
    # Bounding-box query: everything within ~0.25 degrees of Zurich.
    lon, lat = CITIES["Zurich"]
    box_lo = (lon - 0.25, lat - 0.25)
    box_hi = (lon + 0.25, lat + 0.25)
    before = geo.store.stats.snapshot()
    hits = list(geo.range_search(box_lo, box_hi))
    cost = geo.store.stats.delta(before)
    print(
        f"box around Zurich: {len(hits)} POIs in {cost.reads} page reads"
    )
    assert all(name.startswith("Zurich/") for _, name in hits)

    # Partial-range: every POI in the western hemisphere, any latitude.
    west = sum(1 for _ in geo.range_search((None, None), (0.0, None)))
    print(f"western hemisphere: {west} POIs")

    geo.index.check_invariants()
    print("\nstructural invariants hold")


if __name__ == "__main__":
    main()
