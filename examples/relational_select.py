"""Multi-attribute relational selection over a BMEH-tree.

The paper positions the BMEH-tree as a physical design for relational
databases with associative searching.  This example stores an employee
relation keyed by (department, salary, hire date) and answers the three
query species of §1 — exact-match, partial-match, and partial-range —
through one order-preserving index.

Run:  python examples/relational_select.py
"""

from datetime import datetime, timezone

import numpy as np

from repro import DatetimeEncoder, KeyCodec, StringEncoder, UIntEncoder
from repro.core import MultiKeyFile, RangeQuery

DEPARTMENTS = ["eng", "ops", "sales", "legal", "hr", "research"]


def synthesize_employees(count: int = 5_000, seed: int = 24):
    rng = np.random.default_rng(seed)
    rows = []
    for i in range(count):
        dept = DEPARTMENTS[int(rng.integers(len(DEPARTMENTS)))]
        salary = int(min(max(rng.normal(90_000, 25_000), 30_000), 250_000))
        hired = datetime(
            int(rng.integers(1980, 2026)),
            int(rng.integers(1, 13)),
            int(rng.integers(1, 29)),
            tzinfo=timezone.utc,
        )
        rows.append(((dept, salary, hired), {"id": i, "name": f"emp-{i}"}))
    return rows


def main() -> None:
    # 64-bit string prefix: long enough that every department name
    # ("research" is the longest at 8 bytes) encodes losslessly.
    codec = KeyCodec(
        [StringEncoder(64), UIntEncoder(18), DatetimeEncoder(32)]
    )
    table = MultiKeyFile(codec, page_capacity=16)

    employees = synthesize_employees()
    inserted = 0
    for key, row in employees:
        if key not in table:  # identical (dept, salary, date) collides
            table.insert(key, row)
            inserted += 1
    print(f"{inserted} employees indexed on (dept, salary, hired)")
    index = table.index
    print(
        f"directory: {index.node_count} nodes, height {index.height()}, "
        f"α = {index.load_factor:.2f}\n"
    )

    # 1. Exact match.
    sample_key, sample_row = next(
        (k, r) for k, r in employees if k in table
    )
    assert table.search(sample_key)["id"] == sample_row["id"]
    print(f"exact-match  : employee {sample_row['id']} found at {sample_key}")

    # 2. Partial match: one attribute pinned, the others free.
    #    SELECT * FROM emp WHERE dept = 'legal'
    legal = list(table.range_search(("legal", None, None),
                                    ("legal", None, None)))
    print(f"partial-match: dept='legal' -> {len(legal)} employees")
    assert all(k[0] == "legal" for k, _ in legal)

    # 3. Partial range: salary band within a department.
    #    SELECT * FROM emp WHERE dept='eng' AND salary BETWEEN 100k AND 140k
    band = list(
        table.range_search(("eng", 100_000, None), ("eng", 140_000, None))
    )
    print(f"partial-range: eng, 100k..140k salary -> {len(band)} employees")
    assert all(k[0] == "eng" and 100_000 <= k[1] <= 140_000 for k, _ in band)

    # 4. The same query built as a RangeQuery over raw codes.
    query = RangeQuery.box(
        codec.widths,
        {
            0: (codec.encoders[0].encode("eng"),) * 2,
            1: (100_000, 140_000),
        },
    )
    assert sum(1 for _ in query.run(index)) == len(band)

    # 5. Seniority: everyone hired before 1990, any department.
    cutoff = datetime(1990, 1, 1, tzinfo=timezone.utc)
    veterans = list(table.range_search((None, None, None),
                                       (None, None, cutoff)))
    print(f"partial-range: hired before 1990 -> {len(veterans)} employees")

    index.check_invariants()
    print("\nstructural invariants hold")


if __name__ == "__main__":
    main()
