"""The conclusion's extension: the balanced binary quadtree / octtree."""

import pytest

from repro import BMEHTree, BalancedBinaryTrie
from repro.workloads import uniform_keys, unique


class TestBalancedBinaryTrie:
    def test_fanout(self):
        assert BalancedBinaryTrie(2, 4, widths=8).fanout == 4  # quadtree
        assert BalancedBinaryTrie(3, 4, widths=8).fanout == 8  # octtree

    def test_xi_is_all_ones(self):
        trie = BalancedBinaryTrie(2, 4, widths=8)
        assert trie.xi == (1, 1)
        assert trie.phi == 2

    def test_nodes_never_exceed_fanout(self):
        trie = BalancedBinaryTrie(2, 2, widths=8)
        for key in unique(uniform_keys(400, 2, seed=50, domain=256)):
            trie.insert(key)
        trie.check_invariants()
        for node_id in trie.store.page_ids():
            obj = trie.store.peek(node_id)
            if hasattr(obj, "array"):
                assert len(obj.array) <= trie.fanout

    def test_quadtree_is_balanced(self):
        trie = BalancedBinaryTrie(2, 2, widths=8)
        for key in unique(uniform_keys(500, 2, seed=51, domain=256)):
            trie.insert(key)
        depths = set()

        def walk(node_id, level):
            node = trie.store.peek(node_id)
            for entry in node.entries():
                if entry.is_node:
                    walk(entry.ptr, level + 1)
                else:
                    depths.add(level)

        walk(trie.root_id, 1)
        assert len(depths) == 1

    def test_matches_bmeh_with_unit_xi(self):
        keys = unique(uniform_keys(400, 2, seed=52, domain=256))
        trie = BalancedBinaryTrie(2, 4, widths=8)
        bmeh = BMEHTree(2, 4, widths=8, xi=(1, 1), node_policy="per_dim")
        for i, key in enumerate(keys):
            trie.insert(key, i)
            bmeh.insert(key, i)
        assert trie.directory_size == bmeh.directory_size
        assert trie.height() == bmeh.height()
        assert dict(trie.items()) == dict(bmeh.items())

    def test_octtree_roundtrip(self):
        trie = BalancedBinaryTrie(3, 4, widths=6)
        keys = unique(uniform_keys(300, 3, seed=53, domain=64))
        for i, key in enumerate(keys):
            trie.insert(key, i)
        trie.check_invariants()
        for i, key in enumerate(keys):
            assert trie.search(key) == i

    def test_range_search(self):
        trie = BalancedBinaryTrie(2, 4, widths=8)
        keys = unique(uniform_keys(400, 2, seed=54, domain=256))
        for key in keys:
            trie.insert(key)
        lo, hi = (40, 40), (200, 120)
        got = sorted(k for k, _ in trie.range_search(lo, hi))
        want = sorted(
            k for k in keys if lo[0] <= k[0] <= hi[0] and lo[1] <= k[1] <= hi[1]
        )
        assert got == want
