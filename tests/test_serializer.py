"""Round-trip tests for the page codecs."""

import pytest
from hypothesis import given, strategies as st

from repro.core.directory import DirEntry
from repro.core.node import Node, NodeCodec
from repro.errors import SerializationError
from repro.storage import DataPage
from repro.storage.serializer import (
    CodecRegistry,
    DataPageCodec,
    PickleValueCodec,
    RawBytesValueCodec,
    default_registry,
)


class TestValueCodecs:
    def test_pickle_roundtrip(self):
        codec = PickleValueCodec()
        value = {"a": [1, 2, (3, 4)], "b": None}
        assert codec.decode(codec.encode(value)) == value

    def test_raw_bytes_roundtrip(self):
        codec = RawBytesValueCodec()
        assert codec.decode(codec.encode(b"\x00\xff")) == b"\x00\xff"

    def test_raw_bytes_rejects_non_bytes(self):
        with pytest.raises(SerializationError):
            RawBytesValueCodec().encode("text")


class TestDataPageCodec:
    def roundtrip(self, page):
        codec = DataPageCodec()
        return codec.decode_body(codec.encode_body(page))

    def test_empty_page(self):
        back = self.roundtrip(DataPage(8))
        assert len(back) == 0 and back.capacity == 8

    def test_records_roundtrip(self):
        page = DataPage(4)
        page.put((1, 2**40), "hello")
        page.put((3, 4), [1, 2])
        back = self.roundtrip(page)
        assert back.get((1, 2**40)) == "hello"
        assert back.get((3, 4)) == [1, 2]

    def test_handles(self):
        codec = DataPageCodec()
        assert codec.handles(DataPage(1))
        assert not codec.handles(object())

    def test_corrupt_image(self):
        with pytest.raises(SerializationError):
            DataPageCodec().decode_body(b"\x01\x02")

    @given(
        st.lists(
            st.tuples(
                st.tuples(st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1)),
                st.integers(-1000, 1000),
            ),
            max_size=16,
            unique_by=lambda kv: kv[0],
        )
    )
    def test_roundtrip_property(self, records):
        page = DataPage(max(len(records), 1))
        for codes, value in records:
            page.put(codes, value)
        back = self.roundtrip(page)
        assert dict(back.items()) == dict(page.items())


def build_node():
    node = Node(2, (3, 3), level=2)
    node.array.grow(0)
    node.array.grow(1)
    shared = DirEntry([1, 0], 0, 17, True)
    lone = DirEntry([1, 1], 1, None, False)
    node.array[(0, 0)] = shared
    node.array[(0, 1)] = shared
    node.array[(1, 0)] = DirEntry([1, 1], 1, 23, False)
    node.array[(1, 1)] = lone
    return node


class TestNodeCodec:
    def test_roundtrip_structure(self):
        node = build_node()
        codec = NodeCodec()
        back = codec.decode_body(codec.encode_body(node))
        assert back.level == 2
        assert back.xi == (3, 3)
        assert back.array.depths == (1, 1)
        assert back.array[(0, 0)] is back.array[(0, 1)]  # sharing preserved
        assert back.array[(0, 0)].ptr == 17
        assert back.array[(0, 0)].is_node
        assert back.array[(1, 0)].ptr == 23
        assert back.array[(1, 1)].ptr is None

    def test_hole_rejected(self):
        node = Node(2, (3, 3), level=1)  # single None cell
        with pytest.raises(SerializationError):
            NodeCodec().encode_body(node)

    def test_corrupt_image(self):
        with pytest.raises(SerializationError):
            NodeCodec().decode_body(b"\x05")


class TestCodecRegistry:
    def test_default_registry_dispatch(self):
        registry = default_registry()
        page = DataPage(2)
        page.put((5,), "v")
        assert registry.decode(registry.encode(page)).get((5,)) == "v"
        node = build_node()
        assert registry.decode(registry.encode(node)).level == 2

    def test_unknown_object(self):
        with pytest.raises(SerializationError):
            CodecRegistry().encode(object())

    def test_unknown_tag(self):
        with pytest.raises(SerializationError):
            default_registry().decode(b"\x7fxyz")

    def test_empty_image(self):
        with pytest.raises(SerializationError):
            default_registry().decode(b"")

    def test_duplicate_tag_rejected(self):
        registry = CodecRegistry()
        registry.register(DataPageCodec())
        with pytest.raises(SerializationError):
            registry.register(DataPageCodec())
