"""Round-trip tests for the page codecs."""

import pytest
from hypothesis import given, strategies as st

from repro.core.directory import DirEntry
from repro.core.node import LegacyNodeCodec, Node, NodeCodec
from repro.errors import SerializationError
from repro.kdb.kdbtree import (
    LegacyRegionPageCodec,
    RegionPageCodec,
    _Box,
    _Entry,
    _RegionPage,
)
from repro.storage import DataPage, binval
from repro.storage.serializer import (
    CodecRegistry,
    DataPageCodec,
    DataPageCodecV2,
    PickleValueCodec,
    RawBytesValueCodec,
    default_registry,
)


class TestValueCodecs:
    def test_pickle_roundtrip(self):
        codec = PickleValueCodec()
        value = {"a": [1, 2, (3, 4)], "b": None}
        assert codec.decode(codec.encode(value)) == value

    def test_raw_bytes_roundtrip(self):
        codec = RawBytesValueCodec()
        assert codec.decode(codec.encode(b"\x00\xff")) == b"\x00\xff"

    def test_raw_bytes_rejects_non_bytes(self):
        with pytest.raises(SerializationError):
            RawBytesValueCodec().encode("text")


class TestDataPageCodec:
    def roundtrip(self, page):
        codec = DataPageCodec()
        return codec.decode_body(codec.encode_body(page))

    def test_empty_page(self):
        back = self.roundtrip(DataPage(8))
        assert len(back) == 0 and back.capacity == 8

    def test_records_roundtrip(self):
        page = DataPage(4)
        page.put((1, 2**40), "hello")
        page.put((3, 4), [1, 2])
        back = self.roundtrip(page)
        assert back.get((1, 2**40)) == "hello"
        assert back.get((3, 4)) == [1, 2]

    def test_handles(self):
        codec = DataPageCodec()
        assert codec.handles(DataPage(1))
        assert not codec.handles(object())

    def test_corrupt_image(self):
        with pytest.raises(SerializationError):
            DataPageCodec().decode_body(b"\x01\x02")

    @given(
        st.lists(
            st.tuples(
                st.tuples(st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1)),
                st.integers(-1000, 1000),
            ),
            max_size=16,
            unique_by=lambda kv: kv[0],
        )
    )
    def test_roundtrip_property(self, records):
        page = DataPage(max(len(records), 1))
        for codes, value in records:
            page.put(codes, value)
        back = self.roundtrip(page)
        assert dict(back.items()) == dict(page.items())


def build_node():
    node = Node(2, (3, 3), level=2)
    node.array.grow(0)
    node.array.grow(1)
    shared = DirEntry([1, 0], 0, 17, True)
    lone = DirEntry([1, 1], 1, None, False)
    node.array[(0, 0)] = shared
    node.array[(0, 1)] = shared
    node.array[(1, 0)] = DirEntry([1, 1], 1, 23, False)
    node.array[(1, 1)] = lone
    return node


class TestNodeCodec:
    def test_roundtrip_structure(self):
        node = build_node()
        codec = NodeCodec()
        back = codec.decode_body(codec.encode_body(node))
        assert back.level == 2
        assert back.xi == (3, 3)
        assert back.array.depths == (1, 1)
        assert back.array[(0, 0)] is back.array[(0, 1)]  # sharing preserved
        assert back.array[(0, 0)].ptr == 17
        assert back.array[(0, 0)].is_node
        assert back.array[(1, 0)].ptr == 23
        assert back.array[(1, 1)].ptr is None

    def test_hole_rejected(self):
        node = Node(2, (3, 3), level=1)  # single None cell
        with pytest.raises(SerializationError):
            NodeCodec().encode_body(node)

    def test_corrupt_image(self):
        with pytest.raises(SerializationError):
            NodeCodec().decode_body(b"\x05")


class TestCodecRegistry:
    def test_default_registry_dispatch(self):
        registry = default_registry()
        page = DataPage(2)
        page.put((5,), "v")
        assert registry.decode(registry.encode(page)).get((5,)) == "v"
        node = build_node()
        assert registry.decode(registry.encode(node)).level == 2

    def test_unknown_object(self):
        with pytest.raises(SerializationError):
            CodecRegistry().encode(object())

    def test_unknown_tag(self):
        with pytest.raises(SerializationError):
            default_registry().decode(b"\x7fxyz")

    def test_empty_image(self):
        with pytest.raises(SerializationError):
            default_registry().decode(b"")

    def test_duplicate_tag_rejected(self):
        registry = CodecRegistry()
        registry.register(DataPageCodec())
        with pytest.raises(SerializationError):
            registry.register(DataPageCodec())


# --- PR 9: struct layouts under hypothesis ------------------------------

#: Every value shape the tagged binary encoding covers natively.  The
#: integer range deliberately straddles the INT64/BIGINT split and the
#: recursion nests containers inside containers.
binval_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**80), max_value=2**80),
    st.floats(allow_nan=False),
    st.text(max_size=16),
    st.binary(max_size=16),
)
binval_values = st.recursive(
    binval_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.lists(children, max_size=3).map(tuple),
        st.dictionaries(st.text(max_size=6), children, max_size=3),
    ),
    max_leaves=12,
)


def exact(value):
    """repr() distinguishes 1/True/1.0 and (1,)/[1], so comparing reprs
    checks the roundtrip preserved types, not just equality."""
    return repr(value)


class TestBinval:
    @given(binval_values)
    def test_roundtrip_identity(self, value):
        assert exact(binval.decode(binval.encode(value))) == exact(value)

    @given(binval_values)
    def test_native_values_never_pickle(self, value):
        out = bytearray()
        binval.encode_into(out, value, pickle_fallback=False)
        assert exact(binval.decode(out, allow_pickle=False)) == exact(value)

    def test_encode_refuses_pickle_when_disabled(self):
        with pytest.raises(SerializationError):
            binval.encode_into(bytearray(), {1, 2}, pickle_fallback=False)

    def test_decode_refuses_pickle_tag(self):
        blob = binval.encode({1, 2})  # falls back to the pickle tag
        assert binval.decode(blob) == {1, 2}
        with pytest.raises(SerializationError):
            binval.decode(blob, allow_pickle=False)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SerializationError):
            binval.decode(binval.encode(7) + b"\x00")

    @given(binval_values)
    def test_truncation_rejected(self, value):
        blob = binval.encode(value)
        for cut in range(len(blob)):
            with pytest.raises(SerializationError):
                binval.decode(blob[:cut])


class TestDataPageCodecV2:
    def roundtrip(self, page):
        codec = DataPageCodecV2()
        return codec.decode_body(memoryview(codec.encode_body(page)))

    @given(
        st.lists(
            st.tuples(
                st.tuples(st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1)),
                binval_values,
            ),
            max_size=8,
            unique_by=lambda kv: kv[0],
        )
    )
    def test_roundtrip_property(self, records):
        page = DataPage(max(len(records), 1))
        for codes, value in records:
            page.put(codes, value)
        back = self.roundtrip(page)
        assert back.capacity == page.capacity
        assert exact(dict(back.items())) == exact(dict(page.items()))

    def test_bad_format_version(self):
        codec = DataPageCodecV2()
        image = bytearray(codec.encode_body(DataPage(4)))
        image[0] = 99
        with pytest.raises(SerializationError):
            codec.decode_body(bytes(image))

    @given(
        st.lists(
            st.tuples(st.tuples(st.integers(0, 2**20)), binval_values),
            max_size=4,
            unique_by=lambda kv: kv[0],
        )
    )
    def test_every_truncation_rejected(self, records):
        page = DataPage(max(len(records), 1))
        for codes, value in records:
            page.put(codes, value)
        registry = default_registry()
        image = registry.encode(page)
        assert image[0] == DataPageCodecV2.tag
        for cut in range(len(image)):
            with pytest.raises(SerializationError):
                registry.decode(image[:cut])


@st.composite
def nodes(draw):
    """A hole-free directory node: random shape, random entry pool, and
    a random cell→entry assignment (so buddy-sharing groups vary)."""
    dims = draw(st.integers(1, 3))
    xi = tuple(draw(st.integers(1, 4)) for _ in range(dims))
    node = Node(dims, xi, level=draw(st.integers(1, 255)))
    for axis in draw(st.lists(st.integers(0, dims - 1), max_size=3)):
        node.array.grow(axis)
    pool = [
        DirEntry(
            [draw(st.integers(0, 255)) for _ in range(dims)],
            draw(st.integers(0, 255)),
            draw(st.one_of(st.none(), st.integers(0, 2**40))),
            draw(st.booleans()),
        )
        for _ in range(draw(st.integers(1, 4)))
    ]
    size = 2 ** sum(node.array.depths)
    for address in range(size):
        index = node.array.index_of(address)
        node.array[index] = pool[draw(st.integers(0, len(pool) - 1))]
    return node


class TestNodeCodecProperties:
    @given(nodes())
    def test_roundtrip_property(self, node):
        codec = NodeCodec()
        back = codec.decode_body(memoryview(codec.encode_body(node)))
        assert back.level == node.level
        assert back.xi == node.xi
        assert back.array.depths == node.array.depths
        size = 2 ** sum(node.array.depths)
        for address in range(size):
            index = node.array.index_of(address)
            a, b = node.array[index], back.array[index]
            assert (a.h, a.m, a.ptr, a.is_node) == (b.h, b.m, b.ptr, b.is_node)
        # Sharing partition: addresses that aliased one entry still do.
        for lhs in range(size):
            for rhs in range(lhs + 1, size):
                li, ri = node.array.index_of(lhs), node.array.index_of(rhs)
                assert (node.array[li] is node.array[ri]) == (
                    back.array[li] is back.array[ri]
                )

    def test_every_truncation_rejected(self):
        registry = default_registry()
        image = registry.encode(build_node())
        assert image[0] == NodeCodec.tag
        for cut in range(len(image)):
            with pytest.raises(SerializationError):
                registry.decode(image[:cut])

    def test_bad_format_version(self):
        body = bytearray(NodeCodec().encode_body(build_node()))
        body[0] = 99
        with pytest.raises(SerializationError):
            NodeCodec().decode_body(bytes(body))


@st.composite
def region_pages(draw):
    dims = draw(st.integers(1, 3))
    page = _RegionPage(draw(st.integers(0, 255)))
    for _ in range(draw(st.integers(0, 6))):
        lows, highs = [], []
        for _ in range(dims):
            a = draw(st.integers(0, 2**64 - 1))
            b = draw(st.integers(0, 2**64 - 1))
            lows.append(min(a, b))
            highs.append(max(a, b))
        page.entries.append(
            _Entry(
                _Box(tuple(lows), tuple(highs)),
                draw(st.one_of(st.none(), st.integers(0, 2**40))),
                draw(st.booleans()),
                draw(st.integers(0, 255)),
            )
        )
    return page


def build_region_page():
    page = _RegionPage(3)
    page.entries.append(_Entry(_Box((0, 0), (7, 3)), 11, True, 2))
    page.entries.append(_Entry(_Box((8, 0), (15, 3)), None, False, 0))
    return page


class TestRegionPageCodecProperties:
    @given(region_pages())
    def test_roundtrip_property(self, page):
        codec = RegionPageCodec()
        back = codec.decode_body(memoryview(codec.encode_body(page)))
        assert back.level == page.level
        assert len(back.entries) == len(page.entries)
        for a, b in zip(page.entries, back.entries):
            assert (a.box.lows, a.box.highs) == (b.box.lows, b.box.highs)
            assert (a.ptr, a.is_region, a.m) == (b.ptr, b.is_region, b.m)

    def test_every_truncation_rejected(self):
        registry = default_registry()
        image = registry.encode(build_region_page())
        assert image[0] == RegionPageCodec.tag
        for cut in range(len(image)):
            with pytest.raises(SerializationError):
                registry.decode(image[:cut])

    def test_bad_format_version(self):
        body = bytearray(RegionPageCodec().encode_body(build_region_page()))
        body[0] = 99
        with pytest.raises(SerializationError):
            RegionPageCodec().decode_body(bytes(body))


class TestLegacyCoexistence:
    """Images written before the version-byte layouts stay decodable
    through the same registry that now encodes the v2 formats."""

    def test_legacy_data_page_decodes(self):
        page = DataPage(4)
        page.put((1, 2), {"k": [1, 2]})
        legacy = bytes([DataPageCodec.tag]) + DataPageCodec().encode_body(page)
        back = default_registry().decode(legacy)
        assert back.get((1, 2)) == {"k": [1, 2]}

    def test_legacy_node_decodes(self):
        legacy = bytes([LegacyNodeCodec.tag]) + LegacyNodeCodec().encode_body(
            build_node()
        )
        back = default_registry().decode(legacy)
        assert back.level == 2 and back.array[(0, 0)].ptr == 17

    def test_legacy_region_page_decodes(self):
        codec = LegacyRegionPageCodec()
        legacy = bytes([codec.tag]) + codec.encode_body(build_region_page())
        back = default_registry().decode(legacy)
        assert back.entries[0].ptr == 11 and back.entries[1].ptr is None

    def test_encode_always_picks_v2(self):
        registry = default_registry()
        page = DataPage(1)
        page.put((9,), "v")
        assert registry.encode(page)[0] == DataPageCodecV2.tag
        assert registry.encode(build_node())[0] == NodeCodec.tag
        assert registry.encode(build_region_page())[0] == RegionPageCodec.tag
