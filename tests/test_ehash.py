"""The one-dimensional order-preserving extendible hash file (§2.1)."""

import pytest

from repro import ExtendibleHashFile
from repro.bits import from_bitstring
from repro.errors import DuplicateKeyError, KeyNotFoundError


def key(bits: str, width: int = 8) -> int:
    value, length = from_bitstring(bits)
    return value << (width - length)


class TestFigure1Scenario:
    """Recreates the paper's Figure 1a/1b walk-through with w = 8."""

    def test_directory_doubles_when_local_exceeds_global(self):
        # b=2 pages; fill the "01*" region until its split forces H: 2->3.
        f = ExtendibleHashFile(page_capacity=2, width=8)
        for bits in ("00000000", "01000000", "10000000", "11000000"):
            f.insert(key(bits[:8].ljust(8, "0")) if False else int(bits, 2))
        # Hand-built insertions driving prefix "01" deep:
        f2 = ExtendibleHashFile(page_capacity=2, width=8)
        for v in (0b01000000, 0b01100000, 0b01010000, 0b01110000, 0b01001000):
            f2.insert(v)
        f2.check_invariants()
        assert f2.global_depth >= 3
        for v in (0b01000000, 0b01100000, 0b01010000, 0b01110000, 0b01001000):
            assert v in f2

    def test_local_depth_lives_in_directory(self):
        f = ExtendibleHashFile(page_capacity=2, width=8)
        for v in (1, 2, 130, 131, 200):
            f.insert(v, str(v))
        for region in f.index_regions() if hasattr(f, "index_regions") else f.leaf_regions():
            assert 0 <= region.depths[0] <= f.global_depth


class TestScalarAPI:
    def test_scalar_keys(self):
        f = ExtendibleHashFile(page_capacity=4, width=16)
        f.insert(1000, "low")
        f.insert(60000, "high")
        assert f.search(1000) == "low"
        assert f.delete(60000) == "high"
        assert 60000 not in f
        assert 1000 in f

    def test_duplicate(self):
        f = ExtendibleHashFile(page_capacity=4, width=16)
        f.insert(5)
        with pytest.raises(DuplicateKeyError):
            f.insert(5)

    def test_missing(self):
        f = ExtendibleHashFile(page_capacity=4, width=16)
        with pytest.raises(KeyNotFoundError):
            f.search(7)
        with pytest.raises(KeyNotFoundError):
            f.delete(7)

    def test_tuple_keys_also_accepted(self):
        f = ExtendibleHashFile(page_capacity=4, width=16)
        f.insert((9,), "t")
        assert f.search(9) == "t"


class TestOrderPreservation:
    def test_scan_range_returns_sorted_window(self):
        f = ExtendibleHashFile(page_capacity=4, width=16)
        values = [7, 100, 5000, 5001, 5002, 40000, 65535]
        for v in values:
            f.insert(v, v * 10)
        got = sorted(f.scan_range(100, 5001))
        assert got == [(100, 1000), (5000, 50000), (5001, 50010)]

    def test_full_scan(self):
        f = ExtendibleHashFile(page_capacity=2, width=12)
        values = list(range(0, 4096, 37))
        for v in values:
            f.insert(v)
        got = sorted(k for k, _ in f.scan_range(0, 4095))
        assert got == values


class TestGrowthAndShrink:
    def test_directory_growth_monotone_under_inserts(self):
        f = ExtendibleHashFile(page_capacity=2, width=12)
        sizes = []
        for v in range(0, 4096, 16):
            f.insert(v)
            sizes.append(f.directory_size)
        assert sizes == sorted(sizes)
        f.check_invariants()

    def test_delete_everything_contracts_directory(self):
        f = ExtendibleHashFile(page_capacity=2, width=12)
        values = list(range(0, 4096, 16))
        for v in values:
            f.insert(v)
        grown = f.directory_size
        assert grown > 1
        for v in values:
            f.delete(v)
        f.check_invariants()
        assert len(f) == 0
        assert f.directory_size < grown
        assert f.data_page_count == 0

    def test_worst_case_directory_size_bound(self):
        """§3: worst case directory size is O(M/(b+1)) — dense low keys."""
        f = ExtendibleHashFile(page_capacity=2, width=8)
        for v in range(32):
            f.insert(v)
        f.check_invariants()
        assert f.directory_size <= 256  # 2^w hard bound
        assert f.global_depth <= 8
