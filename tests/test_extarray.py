"""Tests for Theorem 1's mapping and the extendible array."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.extarray import ExtendibleArray, theorem1_address, theorem1_index


class TestTheorem1Mapping:
    def test_origin(self):
        assert theorem1_address((0, 0)) == 0
        assert theorem1_address((0, 0, 0)) == 0

    def test_paper_figure2_layout(self):
        """The 4x4 grid printed in the paper's Figure 2 (§2.1)."""
        figure2 = {
            (0, 0): 0, (0, 1): 2, (0, 2): 8, (0, 3): 12,
            (1, 0): 1, (1, 1): 3, (1, 2): 9, (1, 3): 13,
            (2, 0): 4, (2, 1): 5, (2, 2): 10, (2, 3): 14,
            (3, 0): 6, (3, 1): 7, (3, 2): 11, (3, 3): 15,
        }
        for index, address in figure2.items():
            assert theorem1_address(index) == address, index
            assert theorem1_index(address, 2) == index, address

    def test_one_dimension_is_identity(self):
        for i in range(64):
            assert theorem1_address((i,)) == i

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            theorem1_address((-1, 0))

    def test_rejects_wrong_arity(self):
        with pytest.raises(ValueError):
            theorem1_address((1, 2), dims=3)

    def test_index_rejects_bad_args(self):
        with pytest.raises(ValueError):
            theorem1_index(-1, 2)
        with pytest.raises(ValueError):
            theorem1_index(0, 0)

    @given(st.integers(0, 2**12), st.integers(1, 4))
    def test_bijection(self, address, dims):
        assert theorem1_address(theorem1_index(address, dims)) == address

    @given(
        st.integers(1, 4).flatmap(
            lambda d: st.tuples(*([st.integers(0, 63)] * d))
        )
    )
    def test_inverse(self, index):
        address = theorem1_address(index)
        assert theorem1_index(address, len(index)) == index

    def test_cyclic_growth_is_dense(self):
        """After any cyclic-doubling prefix, addresses are exactly 0..S-1."""
        for d in (1, 2, 3):
            shape = [1] * d
            for step in range(2 * d + d):
                shape[step % d] *= 2
                cells = sorted(
                    theorem1_address(i)
                    for i in itertools.product(*(range(e) for e in shape))
                )
                size = 1
                for e in shape:
                    size *= e
                assert cells == list(range(size))


class TestExtendibleArray:
    def test_initial_state(self):
        arr = ExtendibleArray(2, fill="x")
        assert len(arr) == 1
        assert arr.shape == (1, 1)
        assert arr[(0, 0)] == "x"

    def test_dims_validation(self):
        with pytest.raises(ValueError):
            ExtendibleArray(0)

    def test_grow_matches_theorem1_under_cyclic_order(self):
        arr = ExtendibleArray(3)
        for step in range(9):
            arr.grow(step % 3)
        for index in itertools.product(*(range(e) for e in arr.shape)):
            assert arr.address(index) == theorem1_address(index)

    def test_grow_keeps_addresses_stable(self):
        arr = ExtendibleArray(2)
        arr.grow(0)
        arr.grow(1)
        before = {i: arr.address(i) for i in itertools.product(range(2), range(2))}
        arr.grow(0)
        for index, address in before.items():
            assert arr.address(index) == address

    def test_grow_copies_buddy(self):
        arr = ExtendibleArray(2, fill="seed")
        arr.grow(0)
        assert arr[(1, 0)] == "seed"
        arr[(1, 0)] = "other"
        arr.grow(1)
        assert arr[(0, 1)] == "seed"
        assert arr[(1, 1)] == "other"

    def test_grow_with_clone(self):
        arr = ExtendibleArray(1, fill=[1])
        arr.grow(0, clone=list)
        assert arr[(1,)] == [1]
        assert arr[(1,)] is not arr[(0,)]

    def test_grow_bad_axis(self):
        with pytest.raises(ValueError):
            ExtendibleArray(2).grow(2)

    def test_address_bounds_checked(self):
        arr = ExtendibleArray(2)
        with pytest.raises(IndexError):
            arr.address((1, 0))
        with pytest.raises(IndexError):
            arr.address((0,))

    def test_index_of_bounds_checked(self):
        with pytest.raises(IndexError):
            ExtendibleArray(2).index_of(1)

    def test_shrink_reverses_grow(self):
        arr = ExtendibleArray(2, fill=0)
        arr.grow(0)
        arr.grow(1)
        assert arr.shrink() == 1
        assert arr.shape == (2, 1)
        assert arr.shrink() == 0
        assert arr.shape == (1, 1)
        with pytest.raises(ValueError):
            arr.shrink()

    def test_last_grown_axis(self):
        arr = ExtendibleArray(2)
        assert arr.last_grown_axis() is None
        arr.grow(1)
        assert arr.last_grown_axis() == 1

    @settings(max_examples=40)
    @given(st.lists(st.integers(0, 2), min_size=1, max_size=8))
    def test_arbitrary_history_bijective(self, axes):
        arr = ExtendibleArray(3)
        for axis in axes:
            arr.grow(axis)
        addresses = sorted(
            arr.address(i) for i in itertools.product(*(range(e) for e in arr.shape))
        )
        assert addresses == list(range(len(arr)))
        for address in addresses:
            assert arr.address(arr.index_of(address)) == address


class TestRehashGrowth:
    """Prefix-semantics doubling (directory behaviour)."""

    def test_grow_rehash_duplicates_parent(self):
        arr = ExtendibleArray(1, fill=None)
        arr.set_at(0, "root")
        arr.grow_rehash(0)
        assert arr[(0,)] == "root" and arr[(1,)] == "root"

    def test_grow_rehash_splits_meaning(self):
        arr = ExtendibleArray(1)
        arr.set_at(0, "all")
        arr.grow_rehash(0)
        arr[(0,)] = "low"
        arr[(1,)] = "high"
        arr.grow_rehash(0)
        # new cell i inherits old cell i >> 1
        assert arr[(0,)] == "low" and arr[(1,)] == "low"
        assert arr[(2,)] == "high" and arr[(3,)] == "high"

    def test_grow_rehash_multidimensional(self):
        arr = ExtendibleArray(2)
        arr.set_at(0, "o")
        arr.grow_rehash(0)
        arr[(1, 0)] = "b"
        arr.grow_rehash(1)
        assert arr[(0, 0)] == "o" and arr[(0, 1)] == "o"
        assert arr[(1, 0)] == "b" and arr[(1, 1)] == "b"

    def test_shrink_rehash_reverses(self):
        arr = ExtendibleArray(2)
        arr.set_at(0, "o")
        arr.grow_rehash(0)
        arr[(1, 0)] = "b"
        snapshot = {i: arr[i] for i in itertools.product(range(2), range(1))}
        arr.grow_rehash(1)
        assert arr.shrink_rehash() == 1
        for index, value in snapshot.items():
            assert arr[index] == value

    def test_shrink_rehash_empty_rejected(self):
        with pytest.raises(ValueError):
            ExtendibleArray(2).shrink_rehash()

    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=7))
    def test_rehash_model_property(self, axes):
        """grow_rehash must behave like a prefix-tree relabelling."""
        arr = ExtendibleArray(2)
        arr.set_at(0, ())
        model = {(0, 0): ()}
        depths = [0, 0]
        for axis in axes:
            arr.grow_rehash(axis)
            depths[axis] += 1
            model = {
                idx: model[
                    tuple(c >> 1 if j == axis else c for j, c in enumerate(idx))
                ]
                for idx in itertools.product(*(range(1 << h) for h in depths))
            }
        for idx, want in model.items():
            assert arr[idx] == want
