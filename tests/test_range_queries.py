"""Partial-range retrieval (§4.4) against brute force, on every scheme."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import BMEHTree, RangeQuery
from repro.workloads import uniform_keys, normal_keys, unique
from tests.conftest import make_index


def brute(model, lows, highs):
    return sorted(
        k for k in model
        if all(lo <= c <= hi for lo, c, hi in zip(lows, k, highs))
    )


class TestRangeSearch:
    def test_full_box_returns_everything(self, built):
        index, model = built
        got = sorted(k for k, _ in index.range_search((0, 0), (255, 255)))
        assert got == sorted(model)

    def test_point_query(self, built):
        index, model = built
        key = next(iter(model))
        got = list(index.range_search(key, key))
        assert got == [(key, model[key])]

    def test_empty_box(self, built):
        index, _ = built
        assert list(index.range_search((10, 10), (5, 20))) == []

    def test_miss_box(self, built):
        index, model = built
        # A 1-point box on a missing key.
        missing = next(
            k for k in ((x, y) for x in range(256) for y in range(256))
            if k not in model
        )
        assert list(index.range_search(missing, missing)) == []

    def test_random_boxes_match_brute_force(self, built):
        index, model = built
        rng = random.Random(99)
        for _ in range(25):
            lows = (rng.randrange(256), rng.randrange(256))
            highs = tuple(min(255, lo + rng.randrange(128)) for lo in lows)
            got = sorted(k for k, _ in index.range_search(lows, highs))
            assert got == brute(model, lows, highs)

    def test_partial_range_one_side_open(self, built):
        index, model = built
        got = sorted(k for k, _ in index.range_search((100, 0), (255, 255)))
        assert got == brute(model, (100, 0), (255, 255))

    def test_boundary_values(self, built):
        index, model = built
        got = sorted(k for k, _ in index.range_search((0, 255), (255, 255)))
        assert got == brute(model, (0, 255), (255, 255))

    def test_range_validates_keys(self, built):
        index, _ = built
        from repro.errors import KeyDimensionError

        with pytest.raises(KeyDimensionError):
            list(index.range_search((0,), (255, 255)))
        with pytest.raises(KeyDimensionError):
            list(index.range_search((0, 0), (999, 0)))


class TestRangeQueryObject:
    WIDTHS = (8, 8)

    def test_box_defaults_open(self):
        q = RangeQuery.box(self.WIDTHS, {})
        assert q.lows == (0, 0)
        assert q.highs == (255, 255)

    def test_box_partial(self):
        q = RangeQuery.box(self.WIDTHS, {1: (10, 20)})
        assert q.lows == (0, 10)
        assert q.highs == (255, 20)

    def test_box_half_open(self):
        q = RangeQuery.box(self.WIDTHS, {0: (5, None)})
        assert q.lows[0] == 5 and q.highs[0] == 255

    def test_exact(self):
        q = RangeQuery.exact((3, 4))
        assert q.lows == q.highs == (3, 4)
        assert not q.is_empty

    def test_partial_match(self):
        q = RangeQuery.partial_match(self.WIDTHS, {0: 42})
        assert q.lows == (42, 0)
        assert q.highs == (42, 255)

    def test_contains(self):
        q = RangeQuery((0, 10), (5, 20))
        assert q.contains((3, 15))
        assert not q.contains((6, 15))

    def test_empty_detection_and_run(self):
        q = RangeQuery((5, 0), (4, 255))
        assert q.is_empty
        index = BMEHTree(2, 4, widths=8)
        assert list(q.run(index)) == []

    def test_dimension_mismatch(self):
        from repro.errors import KeyDimensionError

        with pytest.raises(KeyDimensionError):
            RangeQuery((1, 2), (3,))

    def test_run_against_index(self, built):
        index, model = built
        q = RangeQuery.partial_match((8, 8), {0: next(iter(model))[0]})
        got = sorted(k for k, _ in q.run(index))
        assert got == brute(model, q.lows, q.highs)


@settings(max_examples=25, deadline=None)
@given(
    keys=st.lists(
        st.tuples(st.integers(0, 255), st.integers(0, 255)),
        min_size=1, max_size=120, unique=True,
    ),
    box=st.tuples(
        st.integers(0, 255), st.integers(0, 255),
        st.integers(0, 255), st.integers(0, 255),
    ),
    b=st.sampled_from([1, 2, 4]),
)
def test_bmeh_range_property(keys, box, b):
    """Hypothesis: BMEH range results always equal brute force."""
    index = BMEHTree(2, b, widths=8)
    for key in keys:
        index.insert(key)
    lows = (min(box[0], box[2]), min(box[1], box[3]))
    highs = (max(box[0], box[2]), max(box[1], box[3]))
    got = sorted(k for k, _ in index.range_search(lows, highs))
    assert got == brute(keys, lows, highs)


def test_three_dimensional_partial_match():
    keys = unique(uniform_keys(400, 3, seed=70, domain=64))
    index = BMEHTree(3, 4, widths=6)
    for key in keys:
        index.insert(key)
    q = RangeQuery.partial_match((6, 6, 6), {1: keys[0][1]})
    got = sorted(k for k, _ in q.run(index))
    assert got == sorted(k for k in keys if k[1] == keys[0][1])


def test_skewed_data_range_queries():
    keys = unique(normal_keys(600, 2, seed=71, domain=256))
    index = BMEHTree(2, 4, widths=8)
    for key in keys:
        index.insert(key)
    lows, highs = (100, 100), (160, 160)  # the dense centre
    got = sorted(k for k, _ in index.range_search(lows, highs))
    assert got == brute(keys, lows, highs)
    assert len(got) > 10  # the centre really is dense
