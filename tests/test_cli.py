"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tables_defaults(self):
        args = build_parser().parse_args(["tables"])
        assert args.schemes == ["MDEH", "MEHTree", "BMEHTree"]
        assert args.table is None

    def test_stats_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "--scheme", "btree"])


class TestCommands:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "BMEHTree" in out
        assert "invariants: OK" in out

    def test_stats_bmeh(self, capsys):
        assert main(["stats", "--scheme", "bmeh", "--n", "1500"]) == 0
        out = capsys.readouterr().out
        assert "region depth histogram" in out
        assert "per-level directory profile" in out

    def test_stats_gridfile(self, capsys):
        assert main(["stats", "--scheme", "gridfile", "--n", "1200"]) == 0
        out = capsys.readouterr().out
        assert "GridFile" in out
        assert "per-level" not in out  # flat scheme: no tree profile

    def test_tables_small(self, capsys):
        code = main(
            ["tables", "--table", "2", "--n", "1500", "--schemes", "BMEHTree"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "table2" in out
        assert "measured/paper" in out

    def test_figures_small(self, capsys):
        code = main(
            ["figures", "--figure", "6", "--n", "1500",
             "--schemes", "BMEHTree"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig6" in out
        assert "BMEHTree" in out

    def test_lint_repo_is_clean(self, capsys):
        assert main(["lint"]) == 0
        assert "lint: OK" in capsys.readouterr().out

    def test_lint_flags_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x == 1.5\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "REP102" in out
        assert "REP103" in out

    def test_check_small(self, capsys):
        assert main(["check", "--n", "60", "--skip-lint"]) == 0
        out = capsys.readouterr().out
        for name in ("mdeh", "meh", "bmeh", "gridfile", "kdb"):
            assert f"{name}: OK" in out
