"""The concurrent query service layer, end to end over real TCP.

Covers the wire protocol (framing, structured errors, fuzz), the
asyncio server (pipelining, admission control, write coalescing), the
satellites (latch timeouts, the ``items()`` snapshot fix) and the
graceful-shutdown durability contract.
"""

import asyncio
import pathlib
import random
import re
import signal
import socket
import struct
import subprocess
import sys
import threading
import time

import pytest

from repro import KeyCodec, UIntEncoder
from repro.core import MultiKeyFile
from repro.errors import (
    DuplicateKeyError,
    KeyDimensionError,
    KeyNotFoundError,
    LatchTimeout,
    ProtocolError,
)
from repro.sanitize import check_structure
from repro.server import (
    MAX_FRAME,
    Opcode,
    QueryClient,
    QueryServer,
    ServerBusy,
    decode_body,
    encode_frame,
)
from repro.server.admission import AdmissionController
from repro.storage import PageStore
from repro.storage.latch import ReadWriteLatch
from repro.storage.wal import WALBackend, recover_index


def make_file(tmp_path=None, page_capacity=8):
    """A 2-d uint16 file; WAL-backed when given a directory."""
    codec = KeyCodec([UIntEncoder(16), UIntEncoder(16)])
    store = None
    if tmp_path is not None:
        store = PageStore(backend=WALBackend(str(tmp_path / "pages.db")))
    return MultiKeyFile(codec, page_capacity=page_capacity, store=store)


# ---------------------------------------------------------------------------
# wire protocol


class TestProtocol:
    def test_frame_roundtrip(self):
        frame = encode_frame(Opcode.INSERT, 7, {"key": [1, 2], "value": "x"})
        (length,) = struct.unpack_from("<I", frame)
        assert length == len(frame) - 4
        opcode, request_id, payload = decode_body(frame[4:])
        assert opcode == Opcode.INSERT
        assert request_id == 7
        assert payload == {"key": [1, 2], "value": "x"}

    def test_empty_payload_roundtrip(self):
        frame = encode_frame(Opcode.PING, 1)
        opcode, request_id, payload = decode_body(frame[4:])
        assert (opcode, request_id, payload) == (Opcode.PING, 1, None)

    def test_bad_version_rejected(self):
        frame = bytearray(encode_frame(Opcode.PING, 1))
        frame[4] = 99  # version byte
        with pytest.raises(ProtocolError) as caught:
            decode_body(bytes(frame[4:]))
        assert caught.value.code == "bad-version"

    def test_garbage_payload_rejected(self):
        body = struct.pack("<BBI", 1, int(Opcode.PING), 1) + b"\xff\xfe"
        with pytest.raises(ProtocolError) as caught:
            decode_body(body)
        assert caught.value.code == "bad-payload"

    def test_read_frame_truncations(self):
        async def scenario(raw):
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            from repro.server.protocol import read_frame

            return await read_frame(reader)

        # clean EOF
        assert asyncio.run(scenario(b"")) is None
        # truncated length prefix
        with pytest.raises(ProtocolError):
            asyncio.run(scenario(b"\x01\x02"))
        # truncated body
        with pytest.raises(ProtocolError):
            asyncio.run(scenario(struct.pack("<I", 10) + b"abc"))
        # oversized claim
        with pytest.raises(ProtocolError) as caught:
            asyncio.run(scenario(struct.pack("<I", MAX_FRAME + 1) + b"x"))
        assert caught.value.code == "oversized"


# ---------------------------------------------------------------------------
# satellites: latch timeouts, items() snapshot


class TestLatchTimeout:
    def test_read_timeout_under_writer(self):
        latch = ReadWriteLatch()
        latch.acquire_write()
        try:
            started = time.perf_counter()
            with pytest.raises(LatchTimeout):
                latch.acquire_read(timeout=0.05)
            assert time.perf_counter() - started < 2.0
        finally:
            latch.release_write()
        # the latch is still usable afterwards
        with latch.read(timeout=0.5):
            pass

    def test_write_timeout_under_reader(self):
        latch = ReadWriteLatch()
        latch.acquire_read()
        try:
            with pytest.raises(LatchTimeout):
                latch.acquire_write(timeout=0.05)
        finally:
            latch.release_read()
        with latch.write(timeout=0.5):
            pass

    def test_timed_out_writer_wakes_blocked_readers(self):
        # A writer that gives up must withdraw its preference claim and
        # wake readers that were parked behind it.
        latch = ReadWriteLatch()
        results = []

        def impatient_writer():
            try:
                latch.acquire_write(timeout=0.1)
            except LatchTimeout:
                results.append("timed-out")
            else:  # unexpected success must still pair the acquire
                latch.release_write()

        def late_reader():
            time.sleep(0.02)  # arrive while the writer is waiting
            with latch.read(timeout=2.0):
                results.append("read")

        latch.acquire_read()
        try:
            threads = [
                threading.Thread(target=impatient_writer),
                threading.Thread(target=late_reader),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=5.0)
        finally:
            latch.release_read()
        assert sorted(results) == ["read", "timed-out"]

    def test_untimed_acquire_still_blocks(self):
        latch = ReadWriteLatch()
        with latch.write():
            assert latch.write_active


class TestItemsSnapshot:
    def test_items_sees_consistent_snapshot_under_writer(self):
        file = make_file()
        for i in range(64):
            file.insert((i, i), i)
        stop = threading.Event()
        errors = []

        def churn():
            i = 64
            while not stop.is_set():
                with file.store.latch.write():
                    file.insert((i, i), i)
                    file.delete((i - 64, i - 64))
                i += 1
                # yield between write windows: the latch is
                # writer-preferring, so a zero-gap reacquire loop would
                # starve the reader side outright
                time.sleep(0.001)

        writer = threading.Thread(target=churn)
        writer.start()
        try:
            for _ in range(20):
                seen = list(file.items())
                # every yielded pair must be self-consistent
                for key, value in seen:
                    if key[0] != value:
                        errors.append((key, value))
        finally:
            stop.set()
            writer.join(timeout=5.0)
        assert not errors


# ---------------------------------------------------------------------------
# the served API end to end


def run(coro):
    return asyncio.run(coro)


class TestServedApi:
    def test_ping_and_stats(self, tmp_path):
        async def scenario():
            file = make_file(tmp_path)
            async with QueryServer(file) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as client:
                    pong = await client.ping()
                    assert pong["pong"] and pong["version"] == 1
                    stats = await client.stats()
                    assert stats["scheme"] == "BMEHTree"
                    assert stats["dims"] == 2 and stats["keys"] == 0
                    assert "wal" in stats and "server" in stats

        run(scenario())

    def test_crud_and_error_mapping(self, tmp_path):
        async def scenario():
            file = make_file(tmp_path)
            async with QueryServer(file) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as client:
                    await client.insert((1, 2), "a")
                    assert await client.search((1, 2)) == "a"
                    with pytest.raises(DuplicateKeyError):
                        await client.insert((1, 2), "again")
                    with pytest.raises(KeyNotFoundError):
                        await client.search((9, 9))
                    with pytest.raises(KeyDimensionError):
                        await client.insert((1, 2, 3), "wrong-arity")
                    assert await client.delete((1, 2)) == "a"
                    with pytest.raises(KeyNotFoundError):
                        await client.delete((1, 2))

        run(scenario())

    def test_batch_forms_and_range(self, tmp_path):
        async def scenario():
            file = make_file(tmp_path)
            async with QueryServer(file) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as client:
                    pairs = [((i, 100 - i), i) for i in range(32)]
                    assert await client.insert_many(pairs) == 32
                    values = await client.search_many(
                        [key for key, _ in pairs[:5]]
                    )
                    assert values == [0, 1, 2, 3, 4]
                    hits = await client.range_search((0, 0), (10, 200))
                    assert sorted(hits) == sorted(
                        (key, value) for key, value in pairs if key[0] <= 10
                    )
                    par = await client.range_search(
                        (0, 0), (10, 200), parallelism=3
                    )
                    assert par == hits
                    assert await client.delete_many(
                        [key for key, _ in pairs[:3]]
                    ) == [0, 1, 2]

        run(scenario())

    def test_pipelined_requests_interleave(self, tmp_path):
        async def scenario():
            file = make_file(tmp_path)
            async with QueryServer(file) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as client:
                    await asyncio.gather(
                        *(client.insert((i, i), i) for i in range(16))
                    )
                    got = await asyncio.gather(
                        *(client.search((i, i)) for i in range(16))
                    )
                    assert got == list(range(16))

        run(scenario())


# ---------------------------------------------------------------------------
# write coalescing


class TestCoalescing:
    def test_concurrent_writes_share_commits(self, tmp_path):
        async def scenario():
            file = make_file(tmp_path)
            backend = file.store.backend
            async with QueryServer(
                file, coalesce_window=0.005, max_inflight=256
            ) as server:
                host, port = server.address
                clients = [
                    await QueryClient.connect(host, port) for _ in range(8)
                ]
                try:
                    commits0 = backend.checkpoints
                    jobs = []
                    for c, client in enumerate(clients):
                        jobs.extend(
                            client.insert((c * 100 + i, c), c * 100 + i)
                            for i in range(12)
                        )
                    await asyncio.gather(*jobs)
                    commits = backend.checkpoints - commits0
                    stats = await clients[0].stats()
                finally:
                    for client in clients:
                        await client.close()
                # 96 acked mutations, strictly fewer commits
                assert commits < 96, commits
                assert stats["keys"] == 96
                assert stats["server"]["groups_committed"] == commits
                assert stats["server"]["largest_group"] > 1
            return file

        file = run(scenario())
        check_structure(file.index)

    def test_key_level_failure_does_not_poison_window(self, tmp_path):
        async def scenario():
            file = make_file(tmp_path)
            async with QueryServer(file, coalesce_window=0.01) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as client:
                    await client.insert((5, 5), "kept")
                    results = await asyncio.gather(
                        client.insert((5, 5), "dup"),   # fails
                        client.insert((6, 6), "ok-1"),  # same window
                        client.insert((7, 7), "ok-2"),
                        return_exceptions=True,
                    )
                    assert isinstance(results[0], DuplicateKeyError)
                    assert results[1] is None and results[2] is None
                    assert await client.search((6, 6)) == "ok-1"
                    assert await client.search((5, 5)) == "kept"

        run(scenario())


# ---------------------------------------------------------------------------
# stress: concurrent clients vs a serial oracle


class TestStress:
    def test_mixed_traffic_matches_oracle(self, tmp_path):
        clients_n = 8
        per_client = 40

        async def scenario():
            file = make_file(tmp_path)
            oracle = {}
            async with QueryServer(
                file, max_inflight=256, coalesce_window=0.002
            ) as server:
                host, port = server.address
                clients = [
                    await QueryClient.connect(host, port)
                    for _ in range(clients_n)
                ]

                async def one_client(c, client):
                    # Disjoint key ranges keep the oracle race-free.
                    base = c * 1000
                    for i in range(per_client):
                        key = (base + i, c)
                        await client.insert(key, base + i)
                        oracle[key] = base + i
                        if i % 5 == 4:
                            victim = (base + i - 2, c)
                            await client.delete(victim)
                            del oracle[victim]
                        if i % 7 == 6:
                            assert await client.search(
                                (base + i, c)
                            ) == base + i

                try:
                    await asyncio.gather(
                        *(one_client(c, cl) for c, cl in enumerate(clients))
                    )
                    ranged = await clients[0].range_search(
                        (0, 0), ((1 << 16) - 1, (1 << 16) - 1),
                        parallelism=4,
                    )
                finally:
                    for client in clients:
                        await client.close()
            assert sorted(ranged) == sorted(oracle.items())
            return file

        file = run(scenario())
        check_structure(file.index)
        assert len(file.index) == clients_n * (per_client - per_client // 5)


# ---------------------------------------------------------------------------
# fuzz: nothing a client sends may kill the server or leak a latch


async def send_raw(host, port, blob, await_reply=True):
    """Write raw bytes; return (reply_bytes, eof) best-effort."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(blob)
    await writer.drain()
    writer.write_eof()
    try:
        data = await asyncio.wait_for(reader.read(1 << 16), timeout=5.0)
    except asyncio.TimeoutError:
        data = b""
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    return data


def parse_error_reply(data):
    """Decode the first frame of ``data`` as a REPLY_ERR payload."""
    assert len(data) >= 4
    (length,) = struct.unpack_from("<I", data)
    opcode, _rid, payload = decode_body(data[4:4 + length])
    assert opcode == Opcode.REPLY_ERR
    return payload


class TestFuzz:
    BLOBS = [
        b"\x00" * 4,                                   # zero-length frame
        struct.pack("<I", MAX_FRAME + 1) + b"x" * 64,  # oversized claim
        struct.pack("<I", 100) + b"short",             # truncated body
        b"\xff\xff\xff",                               # truncated prefix
        struct.pack("<I", 6) + struct.pack("<BBI", 9, 2, 1),   # bad version
        struct.pack("<I", 6) + struct.pack("<BBI", 1, 77, 1),  # bad opcode
        struct.pack("<I", 6) + struct.pack("<BBI", 1, 128, 1),  # reply op
        struct.pack("<I", 8) + struct.pack("<BBI", 1, 2, 1) + b"{]",  # json
        encode_frame(Opcode.INSERT, 3, {"nope": 1}),   # missing key field
        encode_frame(Opcode.INSERT, 4, {"key": "zap"}),  # key not a list
    ]

    def test_fuzz_frames_never_kill_the_server(self, tmp_path):
        async def scenario():
            file = make_file(tmp_path)
            async with QueryServer(file) as server:
                host, port = server.address
                for blob in self.BLOBS:
                    data = await send_raw(host, port, blob)
                    if data:
                        payload = parse_error_reply(data)
                        assert payload["code"], blob
                # after all that, the server still serves correctly
                async with await QueryClient.connect(host, port) as client:
                    await client.insert((1, 1), "alive")
                    assert await client.search((1, 1)) == "alive"
                    stats = await client.stats()
                    assert stats["server"]["protocol_errors"] >= 6
            return file

        file = run(scenario())
        # no latch leaked: both sides acquire instantly
        with file.store.latch.write(timeout=0.5):
            pass
        with file.store.latch.read(timeout=0.5):
            pass

    def test_malformed_but_framed_stream_continues(self, tmp_path):
        # A well-framed garbage request must not close the connection.
        async def scenario():
            file = make_file(tmp_path)
            async with QueryServer(file) as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                from repro.server.protocol import read_frame

                writer.write(encode_frame(Opcode.INSERT, 1, {"bad": 1}))
                writer.write(encode_frame(Opcode.PING, 2))
                await writer.drain()
                replies = {}
                for _ in range(2):
                    body = await asyncio.wait_for(
                        read_frame(reader), timeout=5.0
                    )
                    opcode, rid, payload = decode_body(body)
                    replies[rid] = (opcode, payload)
                assert replies[1][0] == Opcode.REPLY_ERR
                assert replies[1][1]["code"] == "bad-payload"
                assert replies[2][0] == Opcode.REPLY_OK
                writer.close()
                await writer.wait_closed()

        run(scenario())


# ---------------------------------------------------------------------------
# admission control and backpressure


class TestAdmission:
    def test_controller_limits(self):
        admission = AdmissionController(max_inflight=3, per_session=2)
        assert admission.try_admit(1) is None
        assert admission.try_admit(1) is None
        assert admission.try_admit(1) == "pipeline-limit"
        assert admission.try_admit(2) is None
        assert admission.try_admit(3) == "busy"
        admission.release(1)
        assert admission.try_admit(3) is None
        admission.release(1)
        admission.release(2)
        admission.release(3)
        assert admission.inflight == 0

    def test_latch_timeout_becomes_backpressure(self, tmp_path):
        async def scenario():
            file = make_file(tmp_path)
            async with QueryServer(file, latch_timeout=0.1) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as client:
                    await client.insert((1, 1), "x")
                    # an outside writer wedges the store latch; the
                    # block is the point of the test
                    file.store.latch.acquire_write()  # repro: allow[REP201]
                    try:
                        with pytest.raises(ServerBusy) as caught:
                            await client.search((1, 1))
                        assert caught.value.code == "latch-timeout"
                    finally:
                        file.store.latch.release_write()
                    # backpressure, not failure: the next try succeeds
                    assert await client.search((1, 1)) == "x"
                    stats = await client.stats()
                    assert stats["server"]["latch_timeouts"] == 1

        run(scenario())

    def test_pipeline_limit_rejects_excess(self, tmp_path):
        async def scenario():
            file = make_file(tmp_path)
            async with QueryServer(
                file, session_pipeline=4, latch_timeout=0.5
            ) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as client:
                    # repro: allow[REP201] — make requests slow on purpose
                    file.store.latch.acquire_write()
                    try:
                        results = await asyncio.gather(
                            *(client.search((i, i)) for i in range(12)),
                            return_exceptions=True,
                        )
                    finally:
                        file.store.latch.release_write()
                    rejected = [
                        r for r in results
                        if isinstance(r, ServerBusy)
                        and r.code == "pipeline-limit"
                    ]
                    assert rejected, "no request hit the pipelining limit"

        run(scenario())


# ---------------------------------------------------------------------------
# graceful shutdown and durability


class TestShutdown:
    def test_acked_writes_survive_shutdown(self, tmp_path):
        async def scenario():
            file = make_file(tmp_path)
            async with QueryServer(file) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as client:
                    await asyncio.gather(
                        *(client.insert((i, i), i) for i in range(16))
                    )

        run(scenario())
        index = recover_index(str(tmp_path / "pages.db"))
        check_structure(index)
        assert len(index) == 16
        codec = KeyCodec([UIntEncoder(16), UIntEncoder(16)])
        reopened = MultiKeyFile.from_index(codec, index)
        assert reopened.search((7, 7)) == 7

    def test_draining_server_rejects_new_requests(self, tmp_path):
        async def scenario():
            file = make_file(tmp_path)
            server = QueryServer(file)
            await server.start()
            host, port = server.address
            client = await QueryClient.connect(host, port)
            await client.insert((1, 1), "x")
            server.draining = True
            with pytest.raises(ServerBusy) as caught:
                await client.search((1, 1))
            assert caught.value.code == "shutting-down"
            server.draining = False
            await client.close()
            await server.shutdown()

        run(scenario())

    def test_sigterm_under_load_leaves_recoverable_state(self, tmp_path):
        """kill -TERM mid-load: every acked key survives recovery."""
        wal = str(tmp_path / "served.db")
        repo = pathlib.Path(__file__).parent.parent
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--wal", wal,
             "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd=str(repo),
        )
        try:
            line = proc.stdout.readline().strip()
            matched = re.match(r"serving on (\S+):(\d+)", line)
            assert matched, line
            host, port = matched.group(1), int(matched.group(2))

            async def load():
                async with await QueryClient.connect(host, port) as client:
                    await asyncio.gather(
                        *(client.insert((i, i + 1), i) for i in range(14))
                    )

            asyncio.run(load())
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        index = recover_index(wal)
        check_structure(index)
        assert len(index) == 14
        codec = KeyCodec([UIntEncoder(w) for w in index.widths])
        reopened = MultiKeyFile.from_index(codec, index)
        assert reopened.search((5, 6)) == 5


# ---------------------------------------------------------------------------
# bugfix regressions: request-id wraparound, admission underflow,
# malformed-reply validation — the long-lived-cluster-traffic fixes


class TestRequestIdWraparound:
    def test_allocator_wraps_across_the_u32_boundary(self):
        # Offline unit on the allocator: no connection required.
        client = QueryClient.__new__(QueryClient)
        client._pending = {}
        client._next_id = (1 << 32) - 2
        assert client._allocate_id() == (1 << 32) - 1
        # the wire id is u32 and 0 is reserved for server-initiated
        # errors, so the wrap lands on 1 — not 2^32, not 0
        assert client._allocate_id() == 1
        assert client._allocate_id() == 2

    def test_allocator_skips_ids_still_in_flight(self):
        client = QueryClient.__new__(QueryClient)
        client._pending = {2: object(), 3: object()}
        client._next_id = 1
        assert client._allocate_id() == 4

    def test_allocator_raises_when_every_id_is_pending(self):
        client = QueryClient.__new__(QueryClient)
        client._pending = {1: object(), 2: object(), 3: object()}
        client._next_id = 0
        # a synthetic full window: the scan must terminate with a
        # structured error, not loop forever
        import repro.server.client as client_mod

        real_space = client_mod._ID_SPACE
        client_mod._ID_SPACE = 4
        try:
            with pytest.raises(ProtocolError):
                client._allocate_id()
        finally:
            client_mod._ID_SPACE = real_space

    def test_live_connection_survives_the_wrap(self, tmp_path):
        # Regression: pre-fix the counter grew past 2^32 and the next
        # encode blew up, killing the connection mid-traffic.
        async def scenario():
            file = make_file(tmp_path)
            async with QueryServer(file) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as client:
                    client._next_id = (1 << 32) - 3
                    for i in range(8):
                        await client.insert((i, i), i)
                    assert 0 < client._next_id < (1 << 32)
                    got = await asyncio.gather(
                        *(client.search((i, i)) for i in range(8))
                    )
                    assert got == list(range(8))

        run(scenario())


class TestAdmissionUnderflow:
    def test_double_release_clamps_at_zero(self):
        admission = AdmissionController(max_inflight=4, per_session=2)
        assert admission.try_admit(1) is None
        admission.release(1)
        admission.release(1)  # the double release — must not underflow
        assert admission.inflight == 0
        assert admission.underflows == 1
        # capacity is not corrupted: the full budget is still admittable
        for session in (1, 2, 3, 4):
            assert admission.try_admit(session) is None
        assert admission.try_admit(5) == "busy"

    def test_release_for_a_session_holding_nothing_is_ignored(self):
        admission = AdmissionController(max_inflight=4, per_session=2)
        assert admission.try_admit(1) is None
        # session 2 never admitted anything; its spurious release must
        # not steal session 1's slot
        admission.release(2)
        assert admission.inflight == 1
        assert admission.underflows == 1
        admission.release(1)
        assert admission.inflight == 0

    def test_seeded_interleaving_never_corrupts_the_budget(self):
        # Reproducer for the production shape: racing session teardowns
        # firing releases that sometimes lack a matching admit.
        rng = random.Random(20260807)
        admission = AdmissionController(max_inflight=8, per_session=4)
        held = {session: 0 for session in range(4)}
        for _ in range(5000):
            session = rng.randrange(4)
            if rng.random() < 0.48:
                if admission.try_admit(session) is None:
                    held[session] += 1
            else:
                admission.release(session)
                if held[session] > 0:
                    held[session] -= 1
        # the controller's ledger must track the true holdings exactly —
        # pre-fix, spurious releases drove inflight negative and the
        # "full" gate never fired again
        assert admission.inflight == sum(held.values())
        assert 0 <= admission.inflight <= 8
        assert admission.underflows > 0

    def test_sanitized_runs_raise_on_underflow(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        from repro.errors import InvariantViolation

        admission = AdmissionController(max_inflight=2, per_session=2)
        assert admission.try_admit(1) is None
        admission.release(1)
        with pytest.raises(InvariantViolation):
            admission.release(1)


async def _canned_reply_server(replies):
    """A fake peer answering every request with the next canned
    ``REPLY_OK`` payload, malformed or not."""
    from repro.server.protocol import read_frame
    from repro.server import decode_frame

    queue = list(replies)

    async def handle(reader, writer):
        try:
            while queue:
                body = await read_frame(reader)
                if body is None:
                    return
                frame = decode_frame(body)
                writer.write(
                    encode_frame(
                        Opcode.REPLY_OK, frame.request_id, queue.pop(0)
                    )
                )
                await writer.drain()
        except (ProtocolError, ConnectionError, OSError):
            pass
        finally:
            writer.close()

    server = await asyncio.start_server(handle, "127.0.0.1", 0)
    host, port = server.sockets[0].getsockname()[:2]
    return server, host, port


class TestMalformedReplyValidation:
    # (call on the client, canned REPLY_OK payload the peer returns)
    CASES = [
        (lambda c: c.search((1, 1)), {"nothing": True}),       # no "value"
        (lambda c: c.delete((1, 1)), []),                      # not an object
        (lambda c: c.insert_many([((1, 1), "x")]),
         {"inserted": "lots"}),                                # wrong type
        (lambda c: c.search_many([(1, 1)]), {"values": 7}),    # not a list
        (lambda c: c.delete_many([(1, 1)]), {"values": None}),
        (lambda c: c.range_search((0, 0), (1, 1)),
         {"items": [["unpaired"]]}),                           # bad items
        (lambda c: c.range_search((0, 0), (1, 1)), {"items": 3}),
        (lambda c: c.stats(), ["not", "an", "object"]),
        (lambda c: c.ping(), 7),
    ]

    def test_malformed_ok_replies_raise_structured_errors(self):
        # Regression: pre-fix these surfaced as raw TypeError/KeyError
        # from payload indexing, tearing down the caller's pipeline.
        async def scenario():
            for call, payload in self.CASES:
                server, host, port = await _canned_reply_server([payload])
                try:
                    async with await QueryClient.connect(
                        host, port
                    ) as client:
                        with pytest.raises(ProtocolError) as caught:
                            await call(client)
                        assert caught.value.code in (
                            "bad-payload",
                            "bad-frame",
                        ), payload
                finally:
                    server.close()
                    await server.wait_closed()

        run(scenario())

    def test_well_formed_replies_still_pass(self):
        async def scenario():
            server, host, port = await _canned_reply_server(
                [{"value": "v"}, {"values": [1]}, {"items": [[[3, 4], "r"]]}]
            )
            try:
                async with await QueryClient.connect(host, port) as client:
                    assert await client.search((1, 1)) == "v"
                    assert await client.search_many([(1, 1)]) == [1]
                    assert await client.range_search((0, 0), (9, 9)) == [
                        ((3, 4), "r")
                    ]
            finally:
                server.close()
                await server.wait_closed()

        run(scenario())


# ---------------------------------------------------------------------------
# PR 9: buffered framing, negotiated frame caps, v1/v2/v3 coexistence


from repro.server import protocol as proto


def feed_reader(*chunks, eof=True):
    reader = asyncio.StreamReader()
    for chunk in chunks:
        reader.feed_data(chunk)
    if eof:
        reader.feed_eof()
    return reader


class TestFrameReader:
    def test_many_frames_in_one_chunk_then_clean_eof(self):
        async def scenario():
            frames = [encode_frame(Opcode.PING, i) for i in range(3)]
            frames.append(encode_frame(Opcode.INSERT, 3, {"key": [1, 2]}))
            reader = feed_reader(b"".join(frames))
            frs = proto.FrameReader(reader)
            for i, frame in enumerate(frames):
                body = await frs.next_frame()
                assert body == frame[4:]
                assert decode_body(body)[1] == i
            assert await frs.next_frame() is None
            # EOF is sticky.
            assert await frs.next_frame() is None

        run(scenario())

    def test_byte_at_a_time_delivery(self):
        async def scenario():
            frame = encode_frame(Opcode.SEARCH, 9, {"key": [4, 5]})
            reader = asyncio.StreamReader()
            frs = proto.FrameReader(reader)
            task = asyncio.ensure_future(frs.next_frame())
            for i in range(len(frame)):
                reader.feed_data(frame[i : i + 1])
                await asyncio.sleep(0)
            assert await task == frame[4:]
            reader.feed_eof()
            assert await frs.next_frame() is None

        run(scenario())

    def test_truncated_length_prefix_rejected(self):
        async def scenario():
            frs = proto.FrameReader(feed_reader(b"\x05\x00"))
            with pytest.raises(ProtocolError) as caught:
                await frs.next_frame()
            assert caught.value.code == "bad-frame"

        run(scenario())

    def test_truncated_body_rejected(self):
        async def scenario():
            frame = encode_frame(Opcode.PING, 1)
            frs = proto.FrameReader(feed_reader(frame[:-1]))
            with pytest.raises(ProtocolError) as caught:
                await frs.next_frame()
            assert caught.value.code == "bad-frame"

        run(scenario())

    def test_zero_length_frame_rejected(self):
        async def scenario():
            frs = proto.FrameReader(feed_reader(struct.pack("<I", 0)))
            with pytest.raises(ProtocolError) as caught:
                await frs.next_frame()
            assert caught.value.code == "bad-frame"

        run(scenario())

    def test_oversized_honours_the_passed_cap(self):
        async def scenario():
            frame = encode_frame(Opcode.INSERT, 1, {"key": [1] * 50})
            assert len(frame) - 4 > 64
            frs = proto.FrameReader(feed_reader(frame + frame))
            with pytest.raises(ProtocolError) as caught:
                await frs.next_frame(64)
            assert caught.value.code == "oversized"
            # The same stream parses fine under the default cap.
            frs2 = proto.FrameReader(feed_reader(frame + frame))
            assert await frs2.next_frame() == frame[4:]
            assert await frs2.next_frame(None) == frame[4:]

        run(scenario())


class TestFrameCapNegotiation:
    def test_client_adopts_the_advertised_cap(self, tmp_path):
        async def scenario():
            file = make_file(tmp_path)
            async with QueryServer(file, max_frame=4096) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as client:
                    assert client.max_frame == MAX_FRAME  # pre-negotiation
                    pong = await client.ping()
                    assert pong["max_frame"] == 4096
                    assert await client.negotiate() == 3
                    assert client.max_frame == 4096

        run(scenario())

    def test_un_negotiated_connection_keeps_the_default(self, tmp_path):
        async def scenario():
            file = make_file(tmp_path)
            async with QueryServer(file) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as client:
                    await client.insert((1, 1), "v")
                    assert client.max_frame == MAX_FRAME
                    pong = await client.ping()
                    assert pong["max_frame"] == MAX_FRAME

        run(scenario())

    def test_client_refuses_an_oversized_send(self, tmp_path):
        async def scenario():
            file = make_file(tmp_path)
            async with QueryServer(file, max_frame=1024) as server:
                host, port = server.address
                client = await QueryClient.connect(host, port, negotiate=True)
                async with client:
                    with pytest.raises(ProtocolError) as caught:
                        await client.insert((2, 2), "x" * 4000)
                    assert caught.value.code == "oversized"
                    # The connection itself is still healthy.
                    await client.insert((2, 2), "small")
                    assert await client.search((2, 2)) == "small"

        run(scenario())

    def test_server_enforces_its_cap_on_the_wire(self, tmp_path):
        async def scenario():
            file = make_file(tmp_path)
            async with QueryServer(file, max_frame=1024) as server:
                host, port = server.address
                blob = struct.pack("<I", 2000) + b"\x01" * 2000
                payload = parse_error_reply(await send_raw(host, port, blob))
                assert payload["code"] == "oversized"

        run(scenario())


class TestWireCoexistence:
    def test_frame_version_matrix(self):
        payload = {"key": [1, 2], "value": "café"}
        for version in (1, 2, 3):
            blob = encode_frame(
                Opcode.INSERT, 9, payload, version=version, epoch=4
            )
            frame = proto.decode_frame(blob[4:])
            assert frame.version == version
            assert frame.opcode == Opcode.INSERT
            assert frame.request_id == 9
            assert frame.payload == payload
            assert frame.epoch == (4 if version >= 2 else 0)

    def test_v1_and_v3_clients_share_one_server(self, tmp_path):
        async def scenario():
            file = make_file(tmp_path)
            async with QueryServer(file) as server:
                host, port = server.address
                plain = await QueryClient.connect(host, port)
                keen = await QueryClient.connect(host, port, negotiate=True)
                async with plain, keen:
                    assert plain.protocol_version == 1
                    assert keen.protocol_version == 3
                    await keen.insert((1, 2), "from-v3")
                    assert await plain.search((1, 2)) == "from-v3"
                    await plain.insert((3, 4), [1, {"k": None}])
                    assert await keen.search((3, 4)) == [1, {"k": None}]

        run(scenario())

    def test_v3_carries_values_json_cannot(self, tmp_path):
        """bytes survive a v3 round-trip verbatim — proof the binary
        payload codec (not the JSON fallback) carried the frames."""

        async def scenario():
            file = make_file(tmp_path)
            async with QueryServer(file) as server:
                host, port = server.address
                client = await QueryClient.connect(host, port, negotiate=True)
                async with client:
                    value = b"\x00\xff\xfe" * 5
                    await client.insert((7, 7), value)
                    assert await client.search((7, 7)) == value

        run(scenario())
