"""The §5 measurement harness itself."""

import pytest

from repro import BMEHTree, MDEH
from repro.analysis import (
    measure_run,
    measure_search_cost,
    measure_unsuccessful_search_cost,
)
from repro.workloads import uniform_keys, unique


@pytest.fixture(scope="module")
def keys():
    return unique(uniform_keys(1200, 2, seed=90, domain=4096))


class TestMeasureRun:
    def test_fields_populated(self, keys):
        metrics, series = measure_run(
            BMEHTree(2, 8, widths=12), keys, growth_checkpoints=8
        )
        assert metrics.scheme == "BMEHTree"
        assert metrics.keys_inserted == len(keys)
        assert metrics.page_capacity == 8
        assert metrics.data_pages > 0
        assert 0 < metrics.load_factor <= 1
        assert metrics.directory_size > 0
        assert metrics.insert_seconds > 0
        assert metrics.extra["height"] >= 1
        assert len(series.checkpoints) >= 8
        assert series.directory_sizes == sorted(series.directory_sizes)

    def test_lambda_definitions(self, keys):
        """λ counts reads only; MDEH must measure exactly 2.0."""
        index = MDEH(2, 8, widths=12)
        metrics, _ = measure_run(index, keys)
        assert metrics.successful_search_reads == 2.0
        assert metrics.unsuccessful_search_reads <= 2.0

    def test_rho_measures_tail(self, keys):
        index = BMEHTree(2, 8, widths=12)
        metrics, _ = measure_run(index, keys, tail_fraction=0.5)
        # An insert costs at least its traversal + one page write.
        assert metrics.insertion_accesses >= 2.0

    def test_tail_fraction_validated(self, keys):
        with pytest.raises(ValueError):
            measure_run(BMEHTree(2, 8, widths=12), keys, tail_fraction=0.0)

    def test_values_callback(self, keys):
        index = BMEHTree(2, 8, widths=12)
        measure_run(index, keys[:100], values=lambda i: i * 2)
        assert index.search(keys[3]) == 6


class TestGrowthCheckpoints:
    def test_terminal_checkpoint_recorded_when_n_not_divisible(self, keys):
        """Figures 6/7 must end at (n, σ) even when n % step != 0."""
        n = len(keys)
        _, series = measure_run(
            BMEHTree(2, 8, widths=12), keys, growth_checkpoints=7
        )
        assert series.checkpoints[-1] == n
        assert series.directory_sizes == sorted(series.directory_sizes)

    def test_terminal_checkpoint_not_duplicated(self, keys):
        # 100 keys, 10 checkpoints: step divides n, no extra point.
        _, series = measure_run(
            BMEHTree(2, 8, widths=12), keys[:100], growth_checkpoints=10
        )
        assert series.checkpoints[-1] == 100
        assert series.checkpoints.count(100) == 1


class TestSearchCostHelpers:
    def test_empty_probe_list(self):
        assert measure_search_cost(BMEHTree(2, 4, widths=8), []) == 0.0

    def test_successful_probe_cost(self, keys):
        index = MDEH(2, 8, widths=12)
        for key in keys[:200]:
            index.insert(key)
        assert measure_search_cost(index, keys[:50]) == 2.0

    def test_unsuccessful_probes_avoid_present_keys(self, keys):
        index = MDEH(2, 8, widths=12)
        for key in keys[:200]:
            index.insert(key)
        cost = measure_unsuccessful_search_cost(index, keys[:200], count=50)
        assert 1.0 <= cost <= 2.0

    def test_probe_mix_recorded(self, keys):
        index = MDEH(2, 8, widths=12)
        for key in keys[:200]:
            index.insert(key)
        cost = measure_unsuccessful_search_cost(
            index, keys[:200], count=50, candidates=keys[200:]
        )
        assert cost.probe_mix == {"candidates": 50, "uniform": 0}
        uniform = measure_unsuccessful_search_cost(index, keys[:200], count=50)
        assert uniform.probe_mix == {"candidates": 0, "uniform": 50}

    def test_exhausted_candidate_pool_raises(self, keys):
        """Silently padding with uniform probes skewed λ′; now the pool
        must cover the request or the caller must opt in."""
        index = MDEH(2, 8, widths=12)
        for key in keys[:200]:
            index.insert(key)
        with pytest.raises(ValueError, match="pad_uniform"):
            measure_unsuccessful_search_cost(
                index, keys[:200], count=50, candidates=keys[200:210]
            )

    def test_opt_in_padding_records_the_mix(self, keys):
        index = MDEH(2, 8, widths=12)
        for key in keys[:200]:
            index.insert(key)
        cost = measure_unsuccessful_search_cost(
            index, keys[:200], count=50, candidates=keys[200:210],
            pad_uniform=True,
        )
        assert cost.probe_mix == {"candidates": 10, "uniform": 40}

    def test_measure_run_exposes_probe_mix(self, keys):
        metrics, _ = measure_run(
            BMEHTree(2, 8, widths=12), keys[:100],
            absent_candidates=keys[100:],
        )
        mix = metrics.extra["absent_probe_mix"]
        assert mix["candidates"] == 100 and mix["uniform"] == 0

    def test_as_row(self, keys):
        metrics, _ = measure_run(BMEHTree(2, 8, widths=12), keys[:100])
        row = metrics.as_row()
        assert set(row) == {
            "scheme", "b", "lambda", "lambda_prime", "rho", "alpha", "sigma"
        }


class TestAccountingModel:
    def test_pinned_root_makes_height_visible(self, keys):
        """BMEH λ equals (height - 1) + 1: the pinned root is free."""
        index = BMEHTree(2, 2, widths=12)
        for key in keys:
            index.insert(key)
        cost = measure_search_cost(index, keys[:100])
        assert cost == pytest.approx(index.height() - 1 + 1)

    def test_operation_scoping_keeps_searches_constant(self, keys):
        """Repeating the same search must charge the same amount."""
        index = BMEHTree(2, 8, widths=12)
        for key in keys[:300]:
            index.insert(key)
        a = measure_search_cost(index, keys[:20])
        b = measure_search_cost(index, keys[:20])
        assert a == b
