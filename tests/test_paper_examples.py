"""The paper's worked examples (Table 1, Figures 1, 4, 5)."""

import pytest

from repro import BMEHTree, ExtendibleHashFile
from repro.analysis import assert_exact_tiling, occupancy_histogram
from repro.bits import from_bitstring
from repro.workloads.table1 import (
    TABLE1_KEYS,
    TABLE1_PAGE_CAPACITY,
    TABLE1_WIDTHS,
    TABLE1_XI,
    table1_codes,
)


class TestTable1Data:
    def test_twenty_two_keys(self):
        assert len(TABLE1_KEYS) == 22
        assert len(table1_codes()) == 22

    def test_all_unique(self):
        codes = table1_codes()
        assert len(set(codes)) == 22

    def test_widths(self):
        for first, second in TABLE1_KEYS:
            assert len(first) == 4 and len(second) == 3

    def test_k1_value(self):
        assert table1_codes()[0] == (0b1110, 0b010)


class TestFigure4Construction:
    """Insert Table 1 into a BMEH-tree with the example's parameters."""

    @pytest.fixture()
    def tree(self):
        index = BMEHTree(
            2,
            TABLE1_PAGE_CAPACITY,
            widths=TABLE1_WIDTHS,
            xi=TABLE1_XI,
            node_policy="per_dim",
        )
        for label, codes in zip(TABLE1_KEYS, table1_codes()):
            index.insert(codes, label)
        return index

    def test_every_key_retrievable(self, tree):
        for label, codes in zip(TABLE1_KEYS, table1_codes()):
            assert tree.search(codes) == label

    def test_invariants_and_tiling(self, tree):
        tree.check_invariants()
        assert_exact_tiling(tree)

    def test_structure_is_multilevel_and_balanced(self, tree):
        # 22 keys at b = 2 need >= 11 pages; a single ξ=(2,2) node (16
        # cells max) cannot address them all at depth (2,2) with this
        # data, so the directory must have grown upward — and stayed
        # balanced.
        assert tree.height() == 2
        depths = set()

        def walk(node_id, level):
            node = tree.store.peek(node_id)
            for entry in node.entries():
                if entry.is_node:
                    walk(entry.ptr, level + 1)
                else:
                    depths.add(level)

        walk(tree.root_id, 1)
        assert depths == {2}

    def test_page_occupancy(self, tree):
        histogram = occupancy_histogram(tree)
        assert all(count <= TABLE1_PAGE_CAPACITY for count in histogram if count)
        # 22 records in pages of 2: at least 11 pages.
        assert tree.data_page_count >= 11

    def test_partial_range_example(self, tree):
        """All records with first component in ["0100", "0111"]."""
        lows = (0b0100, 0b000)
        highs = (0b0111, 0b111)
        got = sorted(k for k, _ in tree.range_search(lows, highs))
        want = sorted(
            codes for codes in table1_codes() if 0b0100 <= codes[0] <= 0b0111
        )
        assert got == want


class TestFigure1Scenario:
    """§2.1's one-dimensional walk-through, scaled to w = 5."""

    def test_prefix_addressing(self):
        # With H = 2, key "10101..." addresses directory element 2 and
        # "01101..." addresses element 1 (the paper's worked values).
        k1, w = from_bitstring("10101")
        k2, _ = from_bitstring("01101")
        from repro.bits import g

        assert g(k1, w, 2) == 2
        assert g(k2, w, 2) == 1

    def test_split_then_double(self):
        f = ExtendibleHashFile(page_capacity=2, width=5)
        # Fill the "10*" region: triggers a split without doubling once
        # the directory is at depth 2, then "01*" pressure doubles it.
        for bits in ("10000", "10100", "10010", "01000", "01100", "01010"):
            f.insert(from_bitstring(bits)[0])
        f.check_invariants()
        assert f.global_depth >= 3
        for bits in ("10000", "10100", "10010", "01000", "01100", "01010"):
            assert from_bitstring(bits)[0] in f
