"""Unit tests for the bit-level pseudo-key helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.bits import (
    BitView,
    bit_at,
    from_bitstring,
    g,
    low_mask,
    strip,
    to_bitstring,
)


class TestLowMask:
    def test_zero(self):
        assert low_mask(0) == 0

    def test_small(self):
        assert low_mask(3) == 0b111

    def test_word(self):
        assert low_mask(32) == 2**32 - 1


class TestG:
    def test_full_depth_is_identity(self):
        assert g(0b1011, 4, 4) == 0b1011

    def test_zero_depth_is_zero(self):
        assert g(0b1011, 4, 0) == 0

    def test_prefix_msb_first(self):
        # The paper's example: key "10101...", H = 2 -> address 2.
        value, width = from_bitstring("10101")
        assert g(value, width, 2) == 2

    def test_prefix_of_key_01101(self):
        value, width = from_bitstring("01101")
        assert g(value, width, 2) == 1

    def test_depth_beyond_width_rejected(self):
        with pytest.raises(ValueError):
            g(1, 4, 5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            g(1, 4, -1)

    @given(st.integers(0, 2**32 - 1), st.integers(0, 32))
    def test_prefix_matches_string_slice(self, value, depth):
        text = to_bitstring(value, 32)
        want = int(text[:depth], 2) if depth else 0
        assert g(value, 32, depth) == want


class TestStrip:
    def test_strip_nothing(self):
        assert strip(0b1011, 4, 0) == (0b1011, 4)

    def test_strip_all(self):
        assert strip(0b1011, 4, 4) == (0, 0)

    def test_strip_prefix(self):
        assert strip(0b1011, 4, 1) == (0b011, 3)

    def test_strip_too_much_rejected(self):
        with pytest.raises(ValueError):
            strip(0b1011, 4, 5)

    @given(st.integers(0, 2**16 - 1), st.integers(0, 16))
    def test_strip_then_g_reads_continuation(self, value, n):
        """g after stripping n bits equals bits n+1.. of the original."""
        rest, width = strip(value, 16, n)
        assert width == 16 - n
        assert g(rest, width, width) == value & low_mask(16 - n)

    @given(st.integers(0, 2**20 - 1), st.integers(0, 20), st.integers(0, 20))
    def test_g_composes_with_strip(self, value, first, second):
        """Reading H1 bits, stripping them, then reading H2 more equals
        reading H1+H2 bits at once — the invariant tree descent relies on."""
        if first + second > 20:
            return
        head = g(value, 20, first)
        rest, width = strip(value, 20, first)
        tail = g(rest, width, second)
        assert (head << second) | tail == g(value, 20, first + second)


class TestBitAt:
    def test_msb_is_position_one(self):
        assert bit_at(0b1000, 4, 1) == 1
        assert bit_at(0b0111, 4, 1) == 0

    def test_lsb(self):
        assert bit_at(0b0001, 4, 4) == 1

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            bit_at(1, 4, 0)
        with pytest.raises(ValueError):
            bit_at(1, 4, 5)

    @given(st.integers(0, 2**12 - 1), st.integers(1, 12))
    def test_matches_string(self, value, position):
        assert bit_at(value, 12, position) == int(to_bitstring(value, 12)[position - 1])


class TestBitStrings:
    def test_roundtrip(self):
        assert from_bitstring("01101") == (0b01101, 5)
        assert to_bitstring(0b01101, 5) == "01101"

    def test_empty(self):
        assert from_bitstring("") == (0, 0)
        assert to_bitstring(0, 0) == ""

    def test_invalid_chars(self):
        with pytest.raises(ValueError):
            from_bitstring("01x1")

    def test_value_too_wide(self):
        with pytest.raises(ValueError):
            to_bitstring(8, 3)

    @given(st.integers(0, 2**24 - 1), st.integers(24, 32))
    def test_roundtrip_property(self, value, width):
        assert from_bitstring(to_bitstring(value, width)) == (value, width)


class TestBitView:
    def test_from_string_and_str(self):
        view = BitView.from_string("1010")
        assert str(view) == "1010"
        assert view.g(2) == 0b10

    def test_strip_returns_new_view(self):
        view = BitView.from_string("1010").strip(1)
        assert str(view) == "010"

    def test_bit(self):
        assert BitView.from_string("1010").bit(3) == 1

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            BitView(4, 2)
        with pytest.raises(ValueError):
            BitView(0, -1)


class TestMortonFastPath:
    """The table-driven equal-width interleave must be bit-identical to
    the generic loop (which unequal widths always take)."""

    @staticmethod
    def loop_interleave(codes, widths):
        result = 0
        for position in range(1, max(widths) + 1):
            for code, width in zip(codes, widths):
                if position <= width:
                    result = (result << 1) | bit_at(code, width, position)
        return result

    @pytest.mark.parametrize("dims", [1, 2, 3, 4])
    @given(data=st.data())
    def test_matches_loop(self, dims, data):
        from repro.bits import interleave

        width = data.draw(st.integers(1, 31))
        codes = tuple(
            data.draw(st.integers(0, low_mask(width))) for _ in range(dims)
        )
        widths = (width,) * dims
        assert interleave(codes, widths) == self.loop_interleave(
            codes, widths
        )

    @pytest.mark.parametrize("dims", [1, 2, 3, 4, 5, 6])
    @given(data=st.data())
    def test_roundtrip_equal_widths(self, dims, data):
        from repro.bits import deinterleave, interleave

        width = data.draw(st.integers(1, 31))
        codes = tuple(
            data.draw(st.integers(0, low_mask(width))) for _ in range(dims)
        )
        widths = (width,) * dims
        assert deinterleave(interleave(codes, widths), widths) == codes

    @given(data=st.data())
    def test_unequal_widths_take_the_segment_cascade(self, data):
        """Unequal widths dispatch to the segment cascade (equal-width
        runs interleaved table-wise, then concatenated); it must stay
        bit-identical to the generic loop."""
        from repro.bits import deinterleave, interleave

        widths = tuple(
            data.draw(st.integers(1, 16)) for _ in range(3)
        )
        codes = tuple(
            data.draw(st.integers(0, low_mask(w))) for w in widths
        )
        assert interleave(codes, widths) == self.loop_interleave(
            codes, widths
        )
        assert deinterleave(interleave(codes, widths), widths) == codes

    @pytest.mark.parametrize("dims", [5, 7, 9, 16])
    @given(data=st.data())
    def test_matches_loop_beyond_four_dims(self, dims, data):
        """Equal widths past d=4 use the generated per-d tables too —
        the PR 9 generalisation, checked against the same loop."""
        from repro.bits import deinterleave, interleave

        width = data.draw(st.integers(1, 16))
        codes = tuple(
            data.draw(st.integers(0, low_mask(width))) for _ in range(dims)
        )
        widths = (width,) * dims
        assert interleave(codes, widths) == self.loop_interleave(
            codes, widths
        )
        assert deinterleave(interleave(codes, widths), widths) == codes

    @pytest.mark.parametrize("dims", [2, 4, 6, 8])
    @given(data=st.data())
    def test_unequal_widths_any_dims(self, dims, data):
        """The cascade covers every d, not just the d<=4 fast path."""
        from repro.bits import deinterleave, interleave

        widths = tuple(
            data.draw(st.integers(1, 12)) for _ in range(dims)
        )
        codes = tuple(
            data.draw(st.integers(0, low_mask(w))) for w in widths
        )
        assert interleave(codes, widths) == self.loop_interleave(
            codes, widths
        )
        assert deinterleave(interleave(codes, widths), widths) == codes

    def test_known_values_31_bit(self):
        from repro.bits import deinterleave, interleave

        widths = (31, 31)
        codes = (0x7FFFFFFF, 0)
        value = interleave(codes, widths)
        # Alternating 10 pairs, MSB first: dimension 1 contributes the
        # even (leading) positions.
        assert value == int("10" * 31, 2)
        assert deinterleave(value, widths) == codes
