"""Structural tests specific to the BMEH-tree (the paper's contribution)."""

import random

import pytest

from repro import BMEHTree
from repro.analysis import assert_exact_tiling, max_tree_levels
from repro.workloads import (
    adversarial_common_prefix_keys,
    normal_keys,
    uniform_keys,
    unique,
)


def build(keys, b=4, widths=8, **kw):
    index = BMEHTree(2, b, widths=widths, **kw)
    for i, key in enumerate(keys):
        index.insert(key, i)
    return index


def leaf_depths(index):
    """Distances from the root to every data-page region."""
    depths = []

    def walk(node_id, level):
        node = index.store.peek(node_id)
        for entry in node.entries():
            if entry.is_node:
                walk(entry.ptr, level + 1)
            else:
                depths.append(level)

    walk(index.root_id, 1)
    return depths


class TestBalance:
    def test_all_data_pages_at_same_level(self):
        index = build(unique(uniform_keys(800, 2, seed=20, domain=256)), b=2)
        assert len(set(leaf_depths(index))) == 1

    def test_balance_under_heavy_skew(self):
        index = build(unique(normal_keys(800, 2, seed=21, domain=256)), b=2)
        assert len(set(leaf_depths(index))) == 1
        index.check_invariants()

    def test_balance_under_adversarial_prefixes(self):
        keys = adversarial_common_prefix_keys(64, dims=2, width=8)
        index = build(keys, b=2)
        assert len(set(leaf_depths(index))) == 1

    def test_level_numbers_decrease_towards_leaves(self):
        index = build(unique(uniform_keys(800, 2, seed=22, domain=256)), b=2)
        index.check_invariants()  # includes parent.level == child.level + 1

    def test_height_bound(self):
        index = build(unique(uniform_keys(800, 2, seed=23, domain=256)), b=2)
        assert index.height() <= max_tree_levels(16, index.phi)


class TestGrowth:
    def test_root_split_increases_height(self):
        index = BMEHTree(2, 1, widths=8, xi=(1, 1))
        heights = set()
        for key in unique(uniform_keys(120, 2, seed=24, domain=256)):
            index.insert(key)
            heights.add(index.height())
        assert max(heights) >= 3
        index.check_invariants()

    def test_root_stays_pinned_across_splits(self):
        index = build(unique(uniform_keys(600, 2, seed=25, domain=256)), b=2)
        assert index.store.is_pinned(index.root_id)

    def test_node_count_matches_sigma(self):
        index = build(unique(uniform_keys(500, 2, seed=26, domain=256)))
        assert index.directory_size == index.node_count * (1 << index.phi)

    def test_small_xi_grows_taller(self):
        keys = unique(uniform_keys(600, 2, seed=27, domain=256))
        wide = build(keys, b=2, xi=(3, 3))
        narrow = build(keys, b=2, xi=(1, 1))
        assert narrow.height() >= wide.height()

    def test_tiling_remains_exact_during_growth(self):
        index = BMEHTree(2, 2, widths=8)
        keys = unique(uniform_keys(400, 2, seed=28, domain=256))
        for i, key in enumerate(keys):
            index.insert(key)
            if i % 80 == 0:
                assert_exact_tiling(index)
        assert_exact_tiling(index)


class TestNodeCuts:
    """Node splits cut crossing regions downward (DESIGN.md §4.2)."""

    def test_skewed_single_axis_forces_crossing_cuts(self):
        # Vary only axis 0 so axis-1 depths stay 0: node splits along
        # axis 0 will cut h_1 = 0 regions... and vice versa when the
        # split dimension cycles.  The invariant checker proves no page
        # is shared and every key stays reachable.
        keys = [(x, 0) for x in range(256)]
        index = BMEHTree(2, 2, widths=8, xi=(2, 2))
        for key in keys:
            index.insert(key, key[0])
        index.check_invariants()
        for key in keys:
            assert index.search(key) == key[0]
        assert len(set(leaf_depths(index))) == 1

    def test_axis_with_no_node_depth(self):
        # All keys share the axis-1 prefix entirely: cut axes must fall
        # back to the deepest axis when the requested one has depth 0.
        keys = [(x, 5) for x in range(200)]
        index = BMEHTree(2, 2, widths=8, xi=(2, 2), node_policy="per_dim")
        for key in keys:
            index.insert(key)
        index.check_invariants()
        for key in keys:
            assert key in index

    def test_random_interleaving_keeps_invariants(self):
        rng = random.Random(4)
        index = BMEHTree(2, 2, widths=8, xi=(2, 2))
        model = {}
        for step in range(700):
            if model and rng.random() < 0.35:
                key = rng.choice(list(model))
                assert index.delete(key) == model.pop(key)
            else:
                key = (rng.randrange(256), rng.randrange(256))
                if key in model:
                    continue
                index.insert(key, step)
                model[key] = step
            if step % 100 == 0:
                index.check_invariants()
        index.check_invariants()
        assert dict(index.items()) == model


class TestPolicies:
    @pytest.mark.parametrize("policy", ["total", "per_dim"])
    def test_policies_build_correctly(self, policy):
        keys = unique(normal_keys(500, 2, seed=29, domain=256))
        index = build(keys, node_policy=policy)
        index.check_invariants()
        for i, key in enumerate(keys):
            assert index.search(key) == i

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            BMEHTree(2, 4, widths=8, node_policy="both")

    def test_bad_xi_rejected(self):
        with pytest.raises(ValueError):
            BMEHTree(2, 4, widths=8, xi=(0, 3))
        with pytest.raises(ValueError):
            BMEHTree(2, 4, widths=8, xi=(3,))


class TestRootCollapse:
    def test_delete_all_reduces_height(self):
        keys = unique(uniform_keys(600, 2, seed=30, domain=256))
        index = build(keys, b=2)
        grown_height = index.height()
        assert grown_height >= 2
        for key in keys:
            index.delete(key)
        index.check_invariants()
        assert len(index) == 0
        assert index.height() <= grown_height
        assert index.data_page_count == 0


class TestDeletionReversal:
    """§4.2: node splits are reversed by sibling-node merging."""

    def test_delete_all_collapses_directory(self):
        keys = unique(uniform_keys(1500, 2, seed=31, domain=256))
        index = build(keys, b=2)
        peak = index.node_count
        assert peak > 20
        for key in keys:
            index.delete(key)
        index.check_invariants()
        # Full reversal along the deletion paths: the directory returns
        # to (nearly) its initial single node.
        assert index.node_count <= max(peak // 10, 2)

    def test_directory_tracks_population_through_waves(self):
        keys = unique(uniform_keys(1000, 2, seed=32, domain=256))
        index = build(keys, b=2)
        peak = index.node_count
        for key in keys[: len(keys) * 3 // 4]:
            index.delete(key)
        shrunk = index.node_count
        assert shrunk < peak
        for key in keys[: len(keys) * 3 // 4]:
            index.insert(key, "again")
        index.check_invariants()
        assert dict(index.items()) == {
            **{k: "again" for k in keys[: len(keys) * 3 // 4]},
            **{k: i for i, k in enumerate(keys) if i >= len(keys) * 3 // 4},
        }

    def test_balance_survives_prune_and_refill(self):
        """Re-materializing a pruned region must keep every data page at
        the same depth (the balanced chain of _fill_nil_region)."""
        keys = unique(normal_keys(900, 2, seed=33, domain=256))
        index = build(keys, b=2)
        for key in keys[:700]:
            index.delete(key)
        for key in keys[:700]:
            index.insert(key, "back")
        index.check_invariants()
        assert len(set(leaf_depths(index))) == 1

    def test_merge_preserves_regions(self):
        keys = unique(uniform_keys(800, 2, seed=34, domain=256))
        index = build(keys, b=2)
        for key in keys[::2]:
            index.delete(key)
        index.check_invariants()
        from repro.analysis import assert_exact_tiling

        assert_exact_tiling(index)
        for i, key in enumerate(keys):
            if i % 2 == 1:
                assert index.search(key) == i
