"""The sharding layer: partition math, worker lifecycle, routing.

Covers boundary selection (quantile cuts, degenerate fallbacks), the
router's equivalence with a single embedded server under 8 concurrent
clients, the pinned z-ascending merge order of scatter-gathered range
queries, graceful degradation when a worker is SIGKILLed (structured
``shard-down``, never a hang), protocol v2 negotiation with the
``TOPOLOGY``/``ROUTE`` surfaces, transparent ``stale-topology`` retry,
and durability of a sharded cluster across a graceful restart.
"""

import asyncio
import random

import pytest

from repro import KeyCodec, UIntEncoder
from repro.bits import interleave
from repro.core import MultiKeyFile
from repro.errors import KeyNotFoundError, ShardDownError
from repro.server import (
    QueryClient,
    QueryServer,
    ShardManager,
    boundaries_from_sample,
    shard_for,
    uniform_boundaries,
)
from repro.server.router import ShardRouter

DIMS = 2
WIDTH = 16
WIDTHS = (WIDTH,) * DIMS


def run(coro):
    return asyncio.run(coro)


def seeded_keys(n, seed=11):
    """``n`` distinct 2-d keys from a seeded stream."""
    rng = random.Random(seed)
    seen = set()
    while len(seen) < n:
        seen.add((rng.randrange(1 << WIDTH), rng.randrange(1 << WIDTH)))
    return sorted(seen)


def make_manager(tmp_path=None, shards=4, sample=None, **kwargs):
    return ShardManager(
        shards,
        dims=DIMS,
        widths=WIDTH,
        page_capacity=8,
        workdir=tmp_path,
        sample_keys=sample,
        **kwargs,
    )


# ---------------------------------------------------------------------------
# partition math (no processes involved)


class TestPartitionMath:
    def test_uniform_boundaries_split_the_domain_evenly(self):
        cuts = uniform_boundaries(4, 8)
        assert cuts == [64, 128, 192]
        assert shard_for(0, cuts) == 0
        assert shard_for(63, cuts) == 0
        assert shard_for(64, cuts) == 1
        assert shard_for(191, cuts) == 2
        assert shard_for(255, cuts) == 3

    def test_single_shard_needs_no_cuts(self):
        assert uniform_boundaries(1, 8) == []
        assert boundaries_from_sample([3, 1, 4], 1, 8) == []
        assert shard_for(17, []) == 0

    def test_quantile_cuts_balance_a_skewed_sample(self):
        # Quadratically skewed density: uniform cuts would overload the
        # low shard; quantile cuts give each shard an equal sample share.
        zs = [i * i for i in range(200)]
        cuts = boundaries_from_sample(zs, 4, 16)
        assert cuts == sorted(cuts) and len(set(cuts)) == 3
        counts = [0, 0, 0, 0]
        for z in zs:
            counts[shard_for(z, cuts)] += 1
        assert counts == [50, 50, 50, 50]

    def test_degenerate_samples_fall_back_to_uniform(self):
        uniform = uniform_boundaries(4, 8)
        # all-identical values cannot support strictly increasing cuts
        assert boundaries_from_sample([5] * 40, 4, 8) == uniform
        # fewer samples than shards
        assert boundaries_from_sample([1, 2], 4, 8) == uniform
        assert boundaries_from_sample([], 4, 8) == uniform

    def test_manager_routing_matches_interleave(self):
        manager = make_manager(shards=4)  # never started: pure math
        for key in seeded_keys(50):
            z = interleave(key, WIDTHS)
            shard = manager.shard_for_key(key)
            low, high = manager.z_range(shard)
            assert low <= z <= high
        # the shard ranges tile the whole z domain
        assert manager.z_range(0)[0] == 0
        assert manager.z_range(3)[1] == (1 << (DIMS * WIDTH)) - 1
        for shard in range(3):
            assert manager.z_range(shard + 1)[0] == (
                manager.z_range(shard)[1] + 1
            )

    def test_explicit_boundaries_are_validated(self):
        with pytest.raises(ValueError):
            make_manager(shards=4, boundaries=[10, 10, 20])
        with pytest.raises(ValueError):
            make_manager(shards=4, boundaries=[10])


# ---------------------------------------------------------------------------
# router vs a single embedded server: same replies, bit for bit


class TestShardedEquivalence:
    def test_router_matches_single_server_under_concurrency(self, tmp_path):
        clients_n = 8
        keys = seeded_keys(clients_n * 24, seed=23)
        values = {key: i for i, key in enumerate(keys)}
        deletes = keys[::6]
        survivors = [key for key in keys if key not in set(deletes)]
        box_low, box_high = (0, 0), ((1 << 15) - 1, (1 << 15) - 1)

        # The oracle arm: one embedded server, driven serially.
        codec = KeyCodec([UIntEncoder(WIDTH) for _ in range(DIMS)])
        single = MultiKeyFile(codec, page_capacity=8)

        async def oracle():
            async with QueryServer(single) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as client:
                    await client.insert_many(
                        [(key, values[key]) for key in keys]
                    )
                    dropped = await client.delete_many(deletes)
                    searched = await client.search_many(survivors)
                    ranged = await client.range_search(box_low, box_high)
                    return dropped, searched, ranged

        # The cluster arm: 4 shards, 8 concurrent clients.
        manager = make_manager(tmp_path, shards=4, sample=keys)
        manager.start()
        try:

            async def cluster():
                async with ShardRouter(manager, max_inflight=256) as router:
                    host, port = router.address
                    clients = [
                        await QueryClient.connect(host, port, negotiate=True)
                        for _ in range(clients_n)
                    ]
                    try:
                        shares = [
                            keys[c::clients_n] for c in range(clients_n)
                        ]

                        async def one_client(client, share):
                            for key in share:
                                await client.insert(key, values[key])
                                assert await client.search(key) == values[key]

                        await asyncio.gather(
                            *(
                                one_client(c, s)
                                for c, s in zip(clients, shares)
                            )
                        )
                        dropped = await clients[0].delete_many(deletes)
                        searched = await clients[1].search_many(survivors)
                        ranged = await clients[2].range_search(
                            box_low, box_high
                        )
                        with pytest.raises(KeyNotFoundError):
                            await clients[3].search(deletes[0])
                        return dropped, searched, ranged
                    finally:
                        for client in clients:
                            await client.close()

            cluster_out = run(cluster())
        finally:
            manager.stop()
        oracle_out = run(oracle())
        assert cluster_out[0] == oracle_out[0]  # delete_many values
        assert cluster_out[1] == oracle_out[1]  # search_many values
        # same range result set (the single server's natural order is
        # page traversal, not global z; the router's z-ascending merge
        # order is pinned by test_merge_order_is_globally_z_ascending)
        assert sorted(cluster_out[2]) == sorted(oracle_out[2])

    def test_merge_order_is_globally_z_ascending(self, tmp_path):
        keys = seeded_keys(120, seed=5)
        manager = make_manager(tmp_path, shards=4, sample=keys)
        manager.start()
        try:

            async def scenario():
                async with ShardRouter(manager) as router:
                    host, port = router.address
                    client = await QueryClient.connect(
                        host, port, negotiate=True
                    )
                    async with client:
                        await client.insert_many(
                            [(key, i) for i, key in enumerate(keys)]
                        )
                        full = await client.range_search(
                            (0, 0), ((1 << WIDTH) - 1, (1 << WIDTH) - 1)
                        )
                        assert router.metrics.scatter_fanout >= 4
                        return full

            items = run(scenario())
        finally:
            manager.stop()
        assert len(items) == len(keys)
        zs = [interleave(key, WIDTHS) for key, _value in items]
        assert zs == sorted(zs)


# ---------------------------------------------------------------------------
# graceful degradation: a SIGKILLed worker must not take the cluster down


class TestKillOneShard:
    def test_dead_shard_is_reported_not_hung(self, tmp_path):
        keys = seeded_keys(60, seed=31)
        manager = make_manager(tmp_path, shards=2, sample=keys)
        manager.start()
        victim_shard = manager.shard_for_key(keys[0])
        survivor_keys = [
            key for key in keys if manager.shard_for_key(key) != victim_shard
        ]
        dead_keys = [
            key for key in keys if manager.shard_for_key(key) == victim_shard
        ]
        assert survivor_keys and dead_keys
        try:

            async def scenario():
                async with ShardRouter(
                    manager, connect_timeout=2.0
                ) as router:
                    host, port = router.address
                    client = await QueryClient.connect(
                        host, port, negotiate=True
                    )
                    async with client:
                        for i, key in enumerate(keys):
                            await client.insert(key, i)
                        manager.kill(victim_shard)
                        assert not manager.is_alive(victim_shard)
                        # structured shard-down within a bound — a hang
                        # here is exactly the regression being pinned
                        with pytest.raises(ShardDownError):
                            await asyncio.wait_for(
                                client.search(dead_keys[0]), timeout=10.0
                            )
                        # the surviving shard keeps serving point ops...
                        got = await asyncio.wait_for(
                            client.search(survivor_keys[0]), timeout=10.0
                        )
                        assert got == keys.index(survivor_keys[0])
                        # ...and STATS degrades to an error entry instead
                        # of failing the whole scatter
                        stats = await client.stats()
                        errors = [
                            entry
                            for entry in stats["shards"]
                            if "error" in entry
                        ]
                        assert [e["shard"] for e in errors] == [victim_shard]
                        assert router.metrics.shard_errors >= 1

            run(scenario())
        finally:
            manager.stop()


# ---------------------------------------------------------------------------
# protocol v2: negotiation, topology, routing introspection


class TestProtocolV2:
    def test_negotiate_topology_and_route_against_router(self, tmp_path):
        keys = seeded_keys(40, seed=41)
        manager = make_manager(tmp_path, shards=2, sample=keys)
        manager.start()
        try:

            async def scenario():
                async with ShardRouter(manager) as router:
                    host, port = router.address
                    client = await QueryClient.connect(host, port)
                    async with client:
                        assert client.protocol_version == 1
                        assert await client.negotiate() == 3
                        assert client.protocol_version == 3
                        topo = await client.topology()
                        assert topo["role"] == "router"
                        assert topo["epoch"] == router.epoch == 1
                        assert topo["boundaries"] == manager.boundaries
                        assert len(topo["shards"]) == 2
                        for entry, spec in zip(
                            topo["shards"], manager.specs
                        ):
                            assert entry["port"] == spec.port
                            assert entry["z_low"] == spec.z_low
                        for key in keys[:10]:
                            routed = await client.route(key)
                            assert (
                                routed["shard"]
                                == manager.shard_for_key(key)
                            )
                            assert routed["z"] == interleave(key, WIDTHS)
                        # any v2 reply header refreshed the cached epoch
                        assert client.epoch == 1

            run(scenario())
        finally:
            manager.stop()

    def test_router_advertises_its_frame_cap(self, tmp_path):
        manager = make_manager(tmp_path, shards=2)
        manager.start()
        try:

            async def scenario():
                async with ShardRouter(manager, max_frame=8192) as router:
                    host, port = router.address
                    client = await QueryClient.connect(
                        host, port, negotiate=True
                    )
                    async with client:
                        pong = await client.ping()
                        assert pong["max_frame"] == 8192
                        assert client.max_frame == 8192
                        # Routed traffic still flows under the tight cap.
                        await client.insert((1, 2), "capped")
                        assert await client.search((1, 2)) == "capped"

            run(scenario())
        finally:
            manager.stop()

    def test_plain_server_speaks_v2_with_degenerate_topology(self):
        codec = KeyCodec([UIntEncoder(WIDTH) for _ in range(DIMS)])
        file = MultiKeyFile(codec, page_capacity=8)

        async def scenario():
            async with QueryServer(file) as server:
                host, port = server.address
                client = await QueryClient.connect(
                    host, port, negotiate=True
                )
                async with client:
                    assert client.protocol_version == 3
                    topo = await client.topology()
                    assert topo["role"] == "server"
                    assert topo["boundaries"] == []
                    (shard,) = topo["shards"]
                    assert shard["z_low"] == 0
                    assert shard["z_high"] == (1 << (DIMS * WIDTH)) - 1
                    routed = await client.route((7, 9))
                    assert routed["shard"] == 0
                    # a v1 client keeps working against the same server
                    legacy = await QueryClient.connect(host, port)
                    async with legacy:
                        assert legacy.protocol_version == 1
                        await legacy.insert((1, 2), "old")
                        assert await legacy.search((1, 2)) == "old"

        run(scenario())


# ---------------------------------------------------------------------------
# topology epochs: stale clients are fenced, then retry transparently


class TestStaleEpoch:
    def test_stale_client_retries_transparently(self, tmp_path):
        manager = make_manager(tmp_path, shards=2)
        manager.start()
        try:

            async def scenario():
                async with ShardRouter(manager) as router:
                    host, port = router.address
                    client = await QueryClient.connect(
                        host, port, negotiate=True
                    )
                    async with client:
                        await client.insert((3, 4), "a")
                        assert client.epoch == 1
                        # same layout, new epoch: every data request
                        # asserting epoch 1 is now stale
                        new_epoch = await router.set_topology(
                            manager.specs, manager.boundaries
                        )
                        assert new_epoch == 2
                        # the client's first attempt is rejected, learns
                        # epoch 2 from the rejection's own header and
                        # retries without surfacing an error
                        assert await client.search((3, 4)) == "a"
                        assert client.epoch == 2
                        assert router.metrics.stale_rejections >= 1

            run(scenario())
        finally:
            manager.stop()


# ---------------------------------------------------------------------------
# durability: a sharded cluster survives a graceful restart


class TestDurableRestart:
    def test_acked_writes_survive_cluster_restart(self, tmp_path):
        keys = seeded_keys(48, seed=53)

        def drive(manager, action):
            async def scenario():
                async with ShardRouter(manager) as router:
                    host, port = router.address
                    client = await QueryClient.connect(
                        host, port, negotiate=True
                    )
                    async with client:
                        return await action(client)

            return run(scenario())

        first = make_manager(tmp_path, shards=4, sample=keys)
        first.start()
        try:
            boundaries = list(first.boundaries)

            async def write(client):
                assert await client.insert_many(
                    [(key, i) for i, key in enumerate(keys)]
                ) == len(keys)

            drive(first, write)
        finally:
            first.stop()  # SIGTERM: drain + WAL checkpoint per shard

        # A fresh manager re-derives the same partition from the
        # persisted topology sidecar — no sample needed — and each
        # worker recovers its shard from its own WAL.
        second = make_manager(tmp_path, shards=4)
        assert second.boundaries == boundaries
        second.start()
        try:

            async def read(client):
                assert await client.search_many(keys) == list(
                    range(len(keys))
                )
                stats = await client.stats()
                assert stats["keys"] == len(keys)

            drive(second, read)
        finally:
            second.stop()

        # a mismatched shape must refuse to reuse the durable layout
        with pytest.raises(ValueError):
            make_manager(tmp_path, shards=2)
