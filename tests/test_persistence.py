"""Whole-index snapshots: save, load, keep operating."""

import pytest

from repro import BMEHTree, ExtendibleHashFile, MDEH, MEHTree, BalancedBinaryTrie
from repro.errors import StorageError
from repro.storage import load_index, save_index
from repro.workloads import uniform_keys, unique


@pytest.fixture(scope="module")
def keys():
    return unique(uniform_keys(400, 2, seed=110, domain=256))


ALL = [MDEH, MEHTree, BMEHTree, BalancedBinaryTrie]


@pytest.mark.parametrize("cls", ALL)
class TestSnapshotRoundtrip:
    def build(self, cls, keys):
        index = cls(2, 4, widths=8)
        for i, key in enumerate(keys):
            index.insert(key, {"row": i})
        return index

    def test_records_survive(self, cls, keys, tmp_path):
        index = self.build(cls, keys)
        path = str(tmp_path / "index.snap")
        save_index(index, path)
        back = load_index(path)
        assert type(back) is cls
        assert len(back) == len(index)
        for i, key in enumerate(keys):
            assert back.search(key) == {"row": i}

    def test_structure_survives(self, cls, keys, tmp_path):
        index = self.build(cls, keys)
        path = str(tmp_path / "index.snap")
        save_index(index, path)
        back = load_index(path)
        back.check_invariants()
        assert back.directory_size == index.directory_size
        assert back.data_page_count == index.data_page_count
        assert back.widths == index.widths
        assert back.page_capacity == index.page_capacity

    def test_loaded_index_keeps_working(self, cls, keys, tmp_path):
        index = self.build(cls, keys)
        path = str(tmp_path / "index.snap")
        save_index(index, path)
        back = load_index(path)
        back.delete(keys[0])
        assert keys[0] not in back
        new_key = next(
            k for k in ((x, y) for x in range(256) for y in range(256))
            if k not in back
        )
        back.insert(new_key, "fresh")
        assert back.search(new_key) == "fresh"
        back.check_invariants()

    def test_stats_reset_on_load(self, cls, keys, tmp_path):
        index = self.build(cls, keys)
        path = str(tmp_path / "index.snap")
        save_index(index, path)
        back = load_index(path)
        assert back.store.stats.accesses == 0


class TestSnapshotEdgeCases:
    def test_one_dimensional_file(self, tmp_path):
        f = ExtendibleHashFile(4, width=12)
        for v in range(0, 4096, 31):
            f.insert(v, v * 2)
        path = str(tmp_path / "ehf.snap")
        save_index(f, path)
        back = load_index(path)
        assert type(back) is ExtendibleHashFile
        assert back.search(31) == 62
        back.check_invariants()

    def test_empty_index(self, tmp_path):
        index = BMEHTree(2, 4, widths=8)
        path = str(tmp_path / "empty.snap")
        save_index(index, path)
        back = load_index(path)
        assert len(back) == 0
        back.insert((1, 1), "first")
        assert back.search((1, 1)) == "first"

    def test_bad_file_rejected(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"not a snapshot at all......")
        with pytest.raises(StorageError):
            load_index(str(path))

    def test_tree_options_survive(self, tmp_path):
        index = BMEHTree(2, 4, widths=8, xi=(2, 4), node_policy="per_dim")
        index.insert((3, 3))
        path = str(tmp_path / "opts.snap")
        save_index(index, path)
        back = load_index(path)
        assert back.xi == (2, 4)
        assert back._node_policy == "per_dim"
