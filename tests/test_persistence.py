"""Whole-index snapshots: save, load, keep operating."""

import pytest

from repro import BMEHTree, ExtendibleHashFile, MDEH, MEHTree, BalancedBinaryTrie
from repro.errors import StorageError
from repro.storage import load_index, save_index
from repro.workloads import uniform_keys, unique


@pytest.fixture(scope="module")
def keys():
    return unique(uniform_keys(400, 2, seed=110, domain=256))


ALL = [MDEH, MEHTree, BMEHTree, BalancedBinaryTrie]


@pytest.mark.parametrize("cls", ALL)
class TestSnapshotRoundtrip:
    def build(self, cls, keys):
        index = cls(2, 4, widths=8)
        for i, key in enumerate(keys):
            index.insert(key, {"row": i})
        return index

    def test_records_survive(self, cls, keys, tmp_path):
        index = self.build(cls, keys)
        path = str(tmp_path / "index.snap")
        save_index(index, path)
        back = load_index(path)
        assert type(back) is cls
        assert len(back) == len(index)
        for i, key in enumerate(keys):
            assert back.search(key) == {"row": i}

    def test_structure_survives(self, cls, keys, tmp_path):
        index = self.build(cls, keys)
        path = str(tmp_path / "index.snap")
        save_index(index, path)
        back = load_index(path)
        back.check_invariants()
        assert back.directory_size == index.directory_size
        assert back.data_page_count == index.data_page_count
        assert back.widths == index.widths
        assert back.page_capacity == index.page_capacity

    def test_loaded_index_keeps_working(self, cls, keys, tmp_path):
        index = self.build(cls, keys)
        path = str(tmp_path / "index.snap")
        save_index(index, path)
        back = load_index(path)
        back.delete(keys[0])
        assert keys[0] not in back
        new_key = next(
            k for k in ((x, y) for x in range(256) for y in range(256))
            if k not in back
        )
        back.insert(new_key, "fresh")
        assert back.search(new_key) == "fresh"
        back.check_invariants()

    def test_stats_reset_on_load(self, cls, keys, tmp_path):
        index = self.build(cls, keys)
        path = str(tmp_path / "index.snap")
        save_index(index, path)
        back = load_index(path)
        assert back.store.stats.accesses == 0
        # The physical ledger must reset too: loading allocates every
        # page through the backend, and those bookkeeping writes would
        # otherwise masquerade as measured I/O.
        assert back.store.backend_stats.accesses == 0


class TestSnapshotEdgeCases:
    def test_one_dimensional_file(self, tmp_path):
        f = ExtendibleHashFile(4, width=12)
        for v in range(0, 4096, 31):
            f.insert(v, v * 2)
        path = str(tmp_path / "ehf.snap")
        save_index(f, path)
        back = load_index(path)
        assert type(back) is ExtendibleHashFile
        assert back.search(31) == 62
        back.check_invariants()

    def test_empty_index(self, tmp_path):
        index = BMEHTree(2, 4, widths=8)
        path = str(tmp_path / "empty.snap")
        save_index(index, path)
        back = load_index(path)
        assert len(back) == 0
        back.insert((1, 1), "first")
        assert back.search((1, 1)) == "first"

    def test_bad_file_rejected(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"not a snapshot at all......")
        with pytest.raises(StorageError):
            load_index(str(path))

    def test_tree_options_survive(self, tmp_path):
        index = BMEHTree(2, 4, widths=8, xi=(2, 4), node_policy="per_dim")
        index.insert((3, 3))
        path = str(tmp_path / "opts.snap")
        save_index(index, path)
        back = load_index(path)
        assert back.xi == (2, 4)
        assert back._node_policy == "per_dim"


class TestDeepDirectorySnapshots:
    """Directory entries whose local depths exceed 8 bits of prefix.

    Format version 1 packed each hash component as an unsigned byte, so
    any prefix value above 255 silently wrapped; version 2 (the default)
    widens the field, and a version-1 writer now rejects what it cannot
    represent instead of corrupting it.
    """

    def deep_file(self):
        f = ExtendibleHashFile(2, width=12)
        for v in range(0, 4096, 3):
            f.insert(v, v * 2)
        # The regression regime: prefixes wider than one byte.
        assert max(f._dir.depths) > 8
        return f

    def test_round_trip_beyond_8_bit_prefixes(self, tmp_path):
        f = self.deep_file()
        path = str(tmp_path / "deep.snap")
        save_index(f, path)
        back = load_index(path)
        assert len(back) == len(f)
        for v in range(0, 4096, 3):
            assert back.search(v) == v * 2
        back.check_invariants()

    def test_v1_writer_rejects_unrepresentable_entries(self, tmp_path):
        from repro.errors import SerializationError

        f = ExtendibleHashFile(4, width=12)
        for v in range(0, 4096, 61):
            f.insert(v, v)
        # Real local depths stay far below 255 (widths are capped at
        # 64), but if that cap ever moves the v1 writer must fail
        # loudly instead of wrapping the byte field.
        f._dir.get_at(0).h[0] = 300
        with pytest.raises(SerializationError):
            save_index(f, str(tmp_path / "legacy.snap"), version=1)

    def test_v1_snapshots_still_load(self, tmp_path):
        f = ExtendibleHashFile(4, width=12)
        for v in range(0, 4096, 61):
            f.insert(v, -v)
        path = str(tmp_path / "legacy.snap")
        save_index(f, path, version=1)
        with open(path, "rb") as fh:
            assert fh.read(8) == b"BMEHSNAP"
        back = load_index(path)
        assert len(back) == len(f)
        assert back.search(61) == -61
        back.check_invariants()

    def test_v2_magic_on_disk(self, tmp_path):
        index = BMEHTree(2, 4, widths=8)
        index.insert((1, 2), "v")
        path = str(tmp_path / "v2.snap")
        save_index(index, path)
        with open(path, "rb") as fh:
            assert fh.read(8) == b"BMEHSNP2"

    def test_truncated_snapshot_raises_named_error(self, tmp_path):
        from repro.errors import SerializationError

        index = BMEHTree(2, 4, widths=8)
        for i in range(40):
            index.insert((i, i), i)
        path = str(tmp_path / "cut.snap")
        save_index(index, path)
        size = len(open(path, "rb").read())
        for cut in (10, size // 2, size - 3):
            with open(path, "rb") as fh:
                prefix = fh.read(cut)
            cut_path = str(tmp_path / f"cut-{cut}.snap")
            with open(cut_path, "wb") as fh:
                fh.write(prefix)
            with pytest.raises(SerializationError):
                load_index(cut_path)
