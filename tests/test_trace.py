"""Operation traces: persistence, replay, differential testing."""

import pytest

from repro import BMEHTree, GridFile, KDBTree, MDEH
from repro.errors import KeyNotFoundError
from repro.workloads.trace import (
    ReplayReport,
    TraceError,
    churn_trace,
    load_trace,
    replay,
    save_trace,
)


class TestChurnTrace:
    def test_length_and_shape(self):
        ops = churn_trace(500, dims=2, domain=64, seed=1)
        assert len(ops) == 500
        kinds = {op[0] for op in ops}
        assert kinds <= {"insert", "delete", "search"}
        assert "insert" in kinds

    def test_deterministic(self):
        assert churn_trace(200, seed=9) == churn_trace(200, seed=9)
        assert churn_trace(200, seed=9) != churn_trace(200, seed=10)

    def test_deletes_only_live_keys(self):
        ops = churn_trace(800, domain=32, insert_bias=0.5, seed=2)
        live = set()
        for op in ops:
            if op[0] == "insert":
                assert op[1] not in live
                live.add(op[1])
            elif op[0] == "delete":
                assert op[1] in live
                live.discard(op[1])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            churn_trace(10, insert_bias=1.5)
        with pytest.raises(ValueError):
            churn_trace(10, search_share=1.0)


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        ops = churn_trace(300, seed=3)
        path = str(tmp_path / "ops.trace")
        assert save_trace(ops, path) == 300
        assert load_trace(path) == ops

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text('["insert", [1, 2], 0]\nnot json\n')
        with pytest.raises(TraceError):
            load_trace(str(path))

    def test_unknown_operation(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text('["upsert", [1, 2]]\n')
        with pytest.raises(TraceError):
            load_trace(str(path))

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "ops.trace"
        path.write_text('["insert", [1, 2], 7]\n\n["search", [1, 2]]\n')
        assert len(load_trace(str(path))) == 2


class TestReplay:
    def test_counts(self):
        ops = churn_trace(400, domain=64, seed=4)
        index = BMEHTree(2, 4, widths=8)
        report = replay(index, ops)
        assert report.operations == 400
        assert report.inserts - report.deletes == len(index)
        assert len(report.answers) == report.searches
        index.check_invariants()

    def test_misses_counted_not_raised(self):
        index = BMEHTree(2, 4, widths=8)
        report = replay(index, [("delete", (1, 1)), ("search", (2, 2))])
        assert report.misses == 2
        assert report.answers == [KeyNotFoundError]

    def test_differential_replay_across_schemes(self):
        """One trace, four schemes, identical answers — the strongest
        cross-implementation check in the suite."""
        ops = churn_trace(700, domain=128, seed=5)
        reports = {}
        for cls in (MDEH, BMEHTree, GridFile, KDBTree):
            index = cls(2, 4, widths=7)
            reports[cls.__name__] = replay(index, ops)
            index.check_invariants()
        answer_sets = {
            name: report.answers for name, report in reports.items()
        }
        first = next(iter(answer_sets.values()))
        for name, answers in answer_sets.items():
            assert answers == first, f"{name} diverged"
