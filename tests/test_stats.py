"""The descriptive-statistics module."""

import pytest

from repro import BMEHTree, MDEH
from repro.analysis.stats import (
    DirectorySummary,
    format_histogram,
    node_level_profile,
    page_fill_histogram,
    region_depth_histogram,
    summarize,
)
from repro.workloads import normal_keys, uniform_keys, unique


@pytest.fixture(scope="module")
def tree():
    index = BMEHTree(2, 8, widths=16)
    for key in unique(uniform_keys(2000, 2, seed=150, domain=65536)):
        index.insert(key)
    return index


class TestSummarize:
    def test_fields(self, tree):
        summary = summarize(tree)
        assert summary.scheme == "BMEHTree"
        assert summary.keys == len(tree)
        assert summary.data_pages == tree.data_page_count
        assert summary.directory_size == tree.directory_size
        assert summary.height == tree.height()
        assert summary.region_depth_min <= summary.region_depth_mean
        assert summary.region_depth_mean <= summary.region_depth_max

    def test_as_lines_mentions_everything(self, tree):
        text = "\n".join(summarize(tree).as_lines())
        for token in ("BMEHTree", "alpha", "directory", "height"):
            assert token in text

    def test_empty_index(self):
        summary = summarize(BMEHTree(2, 8, widths=16))
        assert summary.keys == 0
        assert summary.regions == 1
        assert summary.nil_regions == 1

    def test_mdeh_has_no_height(self):
        index = MDEH(2, 8, widths=16)
        index.insert((1, 1))
        assert summarize(index).height is None


class TestHistograms:
    def test_depth_histogram_counts_regions(self, tree):
        histogram = region_depth_histogram(tree)
        assert sum(histogram.values()) == summarize(tree).regions
        assert list(histogram) == sorted(histogram)

    def test_fill_histogram_counts_keys(self, tree):
        histogram = page_fill_histogram(tree)
        assert sum(k * v for k, v in histogram.items()) == len(tree)
        assert max(histogram) <= tree.page_capacity

    def test_skew_shows_in_depth_spread(self):
        flat = BMEHTree(2, 8, widths=16)
        for key in unique(uniform_keys(1500, 2, seed=151, domain=65536)):
            flat.insert(key)
        dense = BMEHTree(2, 8, widths=16)
        for key in unique(normal_keys(1500, 2, seed=151, domain=65536)):
            dense.insert(key)
        spread = lambda ix: (
            summarize(ix).region_depth_max - summarize(ix).region_depth_min
        )
        assert spread(dense) >= spread(flat)

    def test_format_histogram(self):
        text = format_histogram({1: 10, 2: 5})
        assert "10" in text and "#" in text
        assert format_histogram({}) == "(empty)"


class TestNodeProfile:
    def test_levels_cover_height(self, tree):
        profile = node_level_profile(tree)
        assert set(profile) == set(range(1, tree.height() + 1))
        assert profile[1]["nodes"] == 1  # the root

    def test_node_totals(self, tree):
        profile = node_level_profile(tree)
        assert sum(row["nodes"] for row in profile.values()) == tree.node_count
