"""The typed multikey-file facade over real attribute encoders."""

from datetime import datetime, timezone

import pytest

from repro import (
    BMEHTree,
    MDEH,
    DatetimeEncoder,
    IntEncoder,
    KeyCodec,
    ScaledFloatEncoder,
    StringEncoder,
    UIntEncoder,
)
from repro.core import MultiKeyFile
from repro.errors import DuplicateKeyError, KeyNotFoundError


@pytest.fixture()
def geo_file():
    """(longitude, latitude) -> place name."""
    codec = KeyCodec(
        [ScaledFloatEncoder(-180.0, 180.0, 24), ScaledFloatEncoder(-90.0, 90.0, 24)]
    )
    f = MultiKeyFile(codec, page_capacity=4)
    places = {
        ("Ottawa", -75.69, 45.42),
        ("Zurich", 8.54, 47.37),
        ("Singapore", 103.82, 1.35),
        ("Quito", -78.47, -0.18),
        ("Sydney", 151.21, -33.87),
    }
    for name, lon, lat in places:
        f.insert((lon, lat), name)
    return f


class TestMultiKeyFile:
    def test_roundtrip(self, geo_file):
        assert geo_file.search((8.54, 47.37)) == "Zurich"
        assert len(geo_file) == 5

    def test_contains(self, geo_file):
        assert (103.82, 1.35) in geo_file
        assert (0.0, 0.0) not in geo_file

    def test_delete(self, geo_file):
        assert geo_file.delete((151.21, -33.87)) == "Sydney"
        assert (151.21, -33.87) not in geo_file

    def test_duplicate(self, geo_file):
        with pytest.raises(DuplicateKeyError):
            geo_file.insert((8.54, 47.37), "Zurich again")

    def test_missing(self, geo_file):
        with pytest.raises(KeyNotFoundError):
            geo_file.search((1.0, 1.0))

    def test_range_search_with_open_sides(self, geo_file):
        # Western hemisphere: longitude <= 0, latitude unconstrained.
        names = {v for _, v in geo_file.range_search((None, None), (0.0, None))}
        assert names == {"Ottawa", "Quito"}

    def test_range_search_box(self, geo_file):
        # Equatorial band.
        names = {v for _, v in geo_file.range_search((None, -5.0), (None, 5.0))}
        assert names == {"Singapore", "Quito"}

    def test_items_decode_keys(self, geo_file):
        for (lon, lat), name in geo_file.items():
            assert -180.0 <= lon <= 180.0
            assert -90.0 <= lat <= 90.0
            assert isinstance(name, str)

    def test_underlying_index_exposed(self, geo_file):
        geo_file.index.check_invariants()
        assert geo_file.store is geo_file.index.store


class TestHeterogeneousKeys:
    def test_string_int_datetime_key(self):
        codec = KeyCodec([StringEncoder(32), IntEncoder(16), DatetimeEncoder(32)])
        f = MultiKeyFile(codec, page_capacity=2)
        rows = [
            ("ab", -5, datetime(1999, 1, 1, tzinfo=timezone.utc)),
            ("ab", -5, datetime(2001, 1, 1, tzinfo=timezone.utc)),
            ("zz", 100, datetime(2010, 6, 1, tzinfo=timezone.utc)),
            ("mm", 0, datetime(2005, 3, 1, tzinfo=timezone.utc)),
        ]
        for i, row in enumerate(rows):
            f.insert(row, i)
        for i, row in enumerate(rows):
            assert f.search(row) == i
        f.index.check_invariants()

    def test_scheme_selection(self):
        codec = KeyCodec([UIntEncoder(8), UIntEncoder(8)])
        f = MultiKeyFile(codec, page_capacity=4, scheme=MDEH)
        f.insert((1, 2), "x")
        assert isinstance(f.index, MDEH)
        assert f.search((1, 2)) == "x"

    def test_scheme_options_forwarded(self):
        codec = KeyCodec([UIntEncoder(8), UIntEncoder(8)])
        f = MultiKeyFile(codec, scheme=BMEHTree, xi=(2, 2))
        assert f.index.xi == (2, 2)
