"""The store-integrated LRU buffer pool: policy, coherence, ledgers."""

import pytest

from repro.errors import StorageError
from repro.storage import (
    BufferPool,
    DataPage,
    FileBackend,
    MemoryBackend,
    PageStore,
)


def pooled_store(capacity=4):
    return PageStore(MemoryBackend(), pool=BufferPool(capacity))


def pooled_file_store(tmp_path, capacity=4, name="pool"):
    backend = FileBackend(str(tmp_path / f"{name}.db"), page_size=4096)
    return PageStore(backend, pool=BufferPool(capacity))


def page_with(key, value=None, capacity=4):
    page = DataPage(capacity)
    page.put(key, value)
    return page


class TestPoolBasics:
    def test_capacity_validation(self):
        with pytest.raises(StorageError):
            BufferPool(capacity=0)

    def test_double_bind_rejected(self):
        pool = BufferPool(4)
        PageStore(MemoryBackend(), pool=pool)
        with pytest.raises(StorageError):
            PageStore(MemoryBackend(), pool=pool)

    def test_double_attach_rejected(self):
        store = pooled_store()
        with pytest.raises(StorageError):
            store.attach_pool(BufferPool(4))

    def test_unbound_pool_cannot_read(self):
        with pytest.raises(StorageError):
            BufferPool(4).read(0)

    def test_hit_after_miss(self):
        store = pooled_store()
        pid = store.allocate(page_with((1, 1)))
        # Allocation admits the frame, so the first read is already a hit.
        store.read(pid)
        assert store.pool.hits == 1 and store.pool.misses == 0
        assert store.pool.hit_rate == 1.0

    def test_hit_rate_empty(self):
        assert BufferPool(1).hit_rate == 0.0

    def test_miss_after_eviction(self):
        store = pooled_store(capacity=1)
        a = store.allocate(page_with((1, 1)))
        b = store.allocate(page_with((2, 2)))  # evicts a
        store.read(a)
        assert store.pool.misses == 1
        store.read(b)  # b was evicted by re-admitting a
        assert store.pool.misses == 2


class TestPhysicalLedger:
    def test_hits_skip_the_backend(self):
        store = pooled_store()
        pid = store.allocate(page_with((1, 1)))
        before = store.backend_stats.snapshot()
        for _ in range(5):
            store.read(pid)
        assert store.backend_stats.delta(before).accesses == 0

    def test_logical_charges_unaffected_by_hits(self):
        store = pooled_store()
        pid = store.allocate(page_with((1, 1)))
        before = store.stats.snapshot()
        store.read(pid)
        store.read(pid)
        assert store.stats.delta(before).reads == 2

    def test_unpooled_store_counts_physical_reads(self):
        store = PageStore()
        pid = store.allocate(page_with((1, 1)))
        store.read(pid)
        store.read(pid)
        assert store.backend_stats.reads == 2
        assert store.backend_stats.writes == 1  # the allocation

    def test_pool_strictly_fewer_backend_calls(self, tmp_path):
        """The acceptance claim in miniature: same workload, file backend
        with and without pool; the pooled run must touch the backend
        strictly less."""
        from repro import BMEHTree
        from repro.workloads import uniform_keys, unique

        keys = unique(uniform_keys(300, 2, seed=9, domain=256))

        def run(store):
            index = BMEHTree(2, 4, widths=8, store=store)
            for i, key in enumerate(keys):
                index.insert(key, i)
            for key in keys[:100]:
                index.search(key)
            store.flush()
            return store.backend_stats.accesses

        raw = run(PageStore(FileBackend(str(tmp_path / "raw.db"))))
        pooled = run(pooled_file_store(tmp_path, capacity=64, name="pooled"))
        assert pooled < raw


class TestWriteBackOnFile:
    def test_write_is_buffered_until_flush(self, tmp_path):
        store = pooled_file_store(tmp_path)
        pid = store.allocate(page_with((1, 1), "a"))
        before = store.backend_stats.snapshot()
        updated = page_with((1, 1), "b")
        store.write(pid, updated)
        assert store.backend_stats.delta(before).writes == 0  # buffered
        assert store.peek(pid) is updated  # pool-coherent peek
        store.flush()
        assert store.backend_stats.delta(before).writes == 1
        # After write-back the file image holds the update.
        assert store.pool.dirty_ids() == frozenset()
        store.close()

    def test_repeated_writes_cost_one_writeback(self, tmp_path):
        store = pooled_file_store(tmp_path)
        pid = store.allocate(page_with((1, 1)))
        before = store.backend_stats.snapshot()
        for value in range(10):
            store.write(pid, page_with((1, 1), value))
        store.flush()
        assert store.backend_stats.delta(before).writes == 1

    def test_dirty_eviction_writes_back(self, tmp_path):
        store = pooled_file_store(tmp_path, capacity=1)
        a = store.allocate(page_with((1, 1)))
        updated = page_with((1, 1), "new")
        store.write(a, updated)
        before = store.backend_stats.snapshot()
        store.allocate(page_with((2, 2)))  # evicts dirty frame a
        assert store.backend_stats.delta(before).writes >= 2
        # The write-back must be durable: read bypassing the (now empty
        # for a) pool decodes the updated image.
        assert store.read(a).get((1, 1)) == "new"
        store.close()

    def test_lru_eviction_order(self, tmp_path):
        store = pooled_file_store(tmp_path, capacity=2)
        a = store.allocate(page_with((1, 1)))
        b = store.allocate(page_with((2, 2)))
        store.read(a)  # freshen a; LRU victim is now b
        store.allocate(page_with((3, 3)))
        frames = store.pool.frame_ids()
        assert a in frames and b not in frames

    def test_eviction_skips_pinned_root(self, tmp_path):
        store = pooled_file_store(tmp_path, capacity=2)
        root = store.allocate(page_with((0, 0)))
        store.pin(root)
        for i in range(1, 6):
            store.allocate(page_with((i, i)))
        assert root in store.pool.frame_ids()
        before = store.backend_stats.snapshot()
        assert store.read(root).get((0, 0)) is None  # still a hit
        assert store.backend_stats.delta(before).reads == 0

    def test_all_pinned_exceeds_capacity(self):
        store = pooled_store(capacity=1)
        a = store.allocate(page_with((1, 1)))
        store.pin(a)
        b = store.allocate(page_with((2, 2)))
        store.pin(b)
        store.read(b)  # re-admit: with every frame pinned, nothing evicts
        frames = store.pool.frame_ids()
        assert a in frames and b in frames  # over capacity, root kept

    def test_close_flushes_dirty_frames(self, tmp_path):
        path = tmp_path / "durable.db"
        store = PageStore(FileBackend(str(path)), pool=BufferPool(8))
        pid = store.allocate(page_with((1, 1), "x"))
        store.write(pid, page_with((1, 1), "y"))
        store.close()
        reopened = PageStore(FileBackend(str(path)))
        assert reopened.read(pid).get((1, 1)) == "y"
        reopened.close()


class TestFreeCoherence:
    def test_free_drops_frame_and_dirty_bit(self, tmp_path):
        store = pooled_file_store(tmp_path)
        pid = store.allocate(page_with((1, 1)))
        store.write(pid, page_with((1, 1), "dirty"))
        store.free(pid)
        assert pid not in store.pool.frame_ids()
        assert pid not in store.pool.dirty_ids()

    def test_free_then_flush_does_not_resurrect(self, tmp_path):
        """Regression: a dirty frame surviving free() used to re-store()
        the freed page at the next flush — a ghost page the directory no
        longer references, and a wrong live count."""
        store = pooled_file_store(tmp_path)
        keep = store.allocate(page_with((9, 9)))
        pid = store.allocate(page_with((1, 1)))
        store.write(pid, page_with((1, 1), "dirty"))
        store.free(pid)
        store.flush()
        assert pid not in store  # the ghost page must stay dead
        assert store.page_count == 1
        assert list(store.page_ids()) == [keep]
        with pytest.raises(StorageError):
            store.read(pid)
        store.close()

    def test_free_then_eviction_does_not_resurrect(self, tmp_path):
        store = pooled_file_store(tmp_path, capacity=2)
        pid = store.allocate(page_with((1, 1)))
        store.write(pid, page_with((1, 1), "dirty"))
        store.free(pid)
        # Fill the pool: evictions must not write the freed page back.
        for i in range(2, 7):
            store.allocate(page_with((i, i)))
        assert pid not in store
        store.close()

    def test_sanitizer_catches_stale_frame(self):
        """The pool-coherent invariant fires on a hand-made stale frame."""
        from repro import BMEHTree
        from repro.errors import InvariantViolation
        from repro.sanitize import check_structure

        store = pooled_store(capacity=8)
        index = BMEHTree(2, 4, widths=8, store=store)
        for x in range(0, 200, 13):
            index.insert((x, x), x)
        check_structure(index)  # coherent pool passes
        store.pool._frames[10**6] = DataPage(4)  # stale frame, dead page
        with pytest.raises(InvariantViolation) as excinfo:
            check_structure(index)
        assert excinfo.value.invariant == "pool-coherent"


class TestIndexOnPooledStore:
    """Full index workloads over FileBackend+pool stay correct."""

    def test_bmeh_churn_with_pool(self, tmp_path):
        import random

        from repro import BMEHTree

        store = pooled_file_store(tmp_path, capacity=16, name="churn")
        index = BMEHTree(2, 4, widths=8, store=store)
        rng = random.Random(77)
        model = {}
        for step in range(400):
            if model and rng.random() < 0.3:
                key = rng.choice(list(model))
                assert index.delete(key) == model.pop(key)
            else:
                key = (rng.randrange(256), rng.randrange(256))
                if key in model:
                    continue
                index.insert(key, step)
                model[key] = step
        index.check_invariants()
        for key, value in model.items():
            assert index.search(key) == value
        assert store.pool.hit_rate > 0.5  # the directory working set caches
        store.close()

    def test_pooled_and_unpooled_builds_agree(self, tmp_path):
        """The pool is invisible to structure and logical accounting."""
        from repro import BMEHTree
        from repro.workloads import uniform_keys, unique

        keys = unique(uniform_keys(400, 2, seed=5, domain=256))
        plain = BMEHTree(2, 4, widths=8)
        pooled = BMEHTree(
            2, 4, widths=8,
            store=pooled_file_store(tmp_path, capacity=32, name="agree"),
        )
        for i, key in enumerate(keys):
            plain.insert(key, i)
            pooled.insert(key, i)
        assert plain.directory_size == pooled.directory_size
        assert plain.data_page_count == pooled.data_page_count
        assert plain.store.stats.accesses == pooled.store.stats.accesses
        a = sorted((c.prefixes, c.depths) for c in plain.leaf_regions())
        b = sorted((c.prefixes, c.depths) for c in pooled.leaf_regions())
        assert a == b
        pooled.store.close()


class TestFlushExceptionSafety:
    """A mid-flush failure must leave exactly the unwritten frames dirty:
    a retry then writes only those, never double-writing the frames that
    already reached the backend."""

    def build_store(self, tmp_path):
        from repro.errors import SerializationError

        backend = FileBackend(str(tmp_path / "flush.db"), page_size=256)
        store = PageStore(backend, pool=BufferPool(8))
        pids = [store.allocate(page_with((i, i))) for i in range(3)]
        for pid in pids:
            store.write(pid, page_with((pid, pid), "updated"))
        oversized = DataPage(64)
        for i in range(30):
            oversized.put((i, 100 + i), "x" * 30)
        store.write(pids[1], oversized)  # cannot fit a 256-byte slot
        return backend, store, pids, SerializationError

    def test_failed_flush_keeps_only_unwritten_dirty(self, tmp_path):
        backend, store, pids, error = self.build_store(tmp_path)
        with pytest.raises(error):
            store.flush()
        # pids[0] reached the backend before the failure; its dirty bit
        # must be gone.  pids[1] (the failing frame) and pids[2] remain.
        assert store.pool.dirty_ids() == {pids[1], pids[2]}
        assert backend.load(pids[0]).get((pids[0], pids[0])) == "updated"

    def test_retry_after_failure_does_not_double_write(self, tmp_path):
        backend, store, pids, error = self.build_store(tmp_path)
        with pytest.raises(error):
            store.flush()
        store.write(pids[1], page_with((pids[1], pids[1]), "fixed"))
        writes_before_retry = store.backend_stats.writes
        store.flush()
        # Only the two still-dirty frames hit the backend on retry.
        assert store.backend_stats.writes == writes_before_retry + 2
        assert store.pool.dirty_ids() == set()
        assert backend.load(pids[1]).get((pids[1], pids[1])) == "fixed"
        assert backend.load(pids[2]).get((pids[2], pids[2])) == "updated"
