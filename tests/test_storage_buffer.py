"""Unit tests for the LRU buffer pool."""

import pytest

from repro.errors import StorageError
from repro.storage import BufferPool, DataPage, PageStore


def make_store_with_pages(n):
    store = PageStore()
    pids = [store.allocate(DataPage(2)) for _ in range(n)]
    return store, pids


class TestBufferPool:
    def test_capacity_validation(self):
        with pytest.raises(StorageError):
            BufferPool(PageStore(), capacity=0)

    def test_hit_after_miss(self):
        store, (pid,) = make_store_with_pages(1)
        pool = BufferPool(store, capacity=4)
        pool.read(pid)
        pool.read(pid)
        assert pool.misses == 1 and pool.hits == 1
        assert pool.hit_rate == 0.5

    def test_hits_are_uncharged(self):
        store, (pid,) = make_store_with_pages(1)
        pool = BufferPool(store, capacity=4)
        pool.read(pid)
        before = store.stats.snapshot()
        pool.read(pid)
        assert store.stats.delta(before).accesses == 0

    def test_lru_eviction_order(self):
        store, pids = make_store_with_pages(3)
        pool = BufferPool(store, capacity=2)
        pool.read(pids[0])
        pool.read(pids[1])
        pool.read(pids[0])  # freshen 0; victim should be 1
        pool.read(pids[2])
        assert len(pool) == 2
        before = store.stats.snapshot()
        pool.read(pids[1])  # evicted -> miss
        assert store.stats.delta(before).reads == 1

    def test_dirty_eviction_writes_back(self):
        store, pids = make_store_with_pages(2)
        pool = BufferPool(store, capacity=1)
        page = DataPage(2)
        pool.write(pids[0], page)
        before = store.stats.snapshot()
        pool.read(pids[1])  # evicts dirty frame 0
        assert store.stats.delta(before).writes == 1
        assert store.peek(pids[0]) is page

    def test_flush_writes_all_dirty(self):
        store, pids = make_store_with_pages(3)
        pool = BufferPool(store, capacity=8)
        pool.write(pids[0], DataPage(2))
        pool.write(pids[2], DataPage(2))
        before = store.stats.snapshot()
        pool.flush()
        assert store.stats.delta(before).writes == 2
        pool.flush()  # nothing left
        assert store.stats.delta(before).writes == 2

    def test_drop_discards_without_writeback(self):
        store, pids = make_store_with_pages(1)
        pool = BufferPool(store, capacity=2)
        pool.write(pids[0], DataPage(2))
        before = store.stats.snapshot()
        pool.drop(pids[0])
        pool.flush()
        assert store.stats.delta(before).writes == 0

    def test_hit_rate_empty(self):
        assert BufferPool(PageStore(), capacity=1).hit_rate == 0.0

    def test_store_property(self):
        store = PageStore()
        assert BufferPool(store).store is store
