"""The structural sanitizer: property workloads, mutation detection, hooks
and the repo lint pass.

The mutation tests are the sanitizer's own test bed: each one corrupts a
structure in a specific way and asserts the matching invariant — by name —
fires.  A checker that never fires is vacuous; these tests prove every
advertised invariant actually bites.
"""

from __future__ import annotations

import pathlib
import random
import subprocess
import sys

import pytest

from repro import (
    BMEHTree,
    GridFile,
    InvariantViolation,
    KDBTree,
    MDEH,
    MEHTree,
    sanitized,
)
from repro.core.node import Node
from repro.extarray import ExtendibleArray
from repro.sanitize import (
    Sanitizer,
    check_extendible_array,
    check_structure,
    disable_global_sanitizer,
    enable_global_sanitizer,
    global_sanitizer,
    lint_paths,
    lint_source,
    sanitize_enabled,
    sanitize_rate,
)

from tests.conftest import make_index


def fill(index, rng, n, domain=256):
    """Insert ``n`` unique random keys, returning them in order."""
    keys = []
    while len(keys) < n:
        key = (rng.randrange(domain), rng.randrange(domain))
        if key in index:
            continue
        index.insert(key, len(keys))
        keys.append(key)
    return keys


def violation(index):
    """The InvariantViolation ``index`` currently provokes."""
    with pytest.raises(InvariantViolation) as excinfo:
        check_structure(index)
    return excinfo.value


def tree_nodes(index):
    """Every directory node of a hash tree, root first."""
    frontier = [index.store.peek(index.root_id)]
    while frontier:
        node = frontier.pop()
        yield node
        for entry, _ in distinct_entries(node):
            if entry.is_node and entry.ptr is not None:
                frontier.append(index.store.peek(entry.ptr))


def distinct_entries(node):
    """The distinct DirEntry objects of one node, by first address."""
    seen = {}
    for address in range(len(node.array)):
        entry = node.array.get_at(address)
        seen.setdefault(id(entry), (entry, node.array.index_of(address)))
    return list(seen.values())


class TestPropertyWorkloads:
    """Seeded random insert/delete/range runs under full validation."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mixed_workload_stays_valid(self, scheme, seed):
        cls, options = scheme
        index = make_index(cls, options)
        rng = random.Random(seed)
        live = []
        inserted = 0
        with sanitized(index) as sanitizer:
            while len(index) < 150:
                key = (rng.randrange(256), rng.randrange(256))
                if key in index:
                    continue
                index.insert(key, inserted)
                inserted += 1
                live.append(key)
                if inserted % 3 == 0:
                    index.delete(live.pop(rng.randrange(len(live))))
            low = rng.randrange(128)
            list(index.range_search((low, low), (low + 64, low + 64)))
            # Drain completely: merges collapse all the way to the root.
            while live:
                index.delete(live.pop(rng.randrange(len(live))))
        assert len(index) == 0
        assert sanitizer.checks_run == sanitizer.mutations_seen > 0

    def test_delete_heavy_merge_paths(self, scheme):
        """A 45% deletion mix keeps the merge machinery honest."""
        cls, options = scheme
        index = make_index(cls, options)
        rng = random.Random(1986)
        live = []
        with sanitized(index) as sanitizer:
            for step in range(400):
                if live and rng.random() < 0.45:
                    index.delete(live.pop(rng.randrange(len(live))))
                else:
                    key = (rng.randrange(256), rng.randrange(256))
                    if key in index:
                        continue
                    index.insert(key, step)
                    live.append(key)
        assert sanitizer.checks_run > 0
        assert len(index) == len(live)


class TestMutationDetection:
    """Corrupt each structure; assert the right invariant fires by name."""

    def build_tree(self, n=200):
        index = BMEHTree(2, 4, widths=8)
        fill(index, random.Random(11), n)
        return index

    def page_entries(self, index):
        """(node, entry, anchor) triples for data-page entries."""
        for node in tree_nodes(index):
            for entry, anchor in distinct_entries(node):
                if not entry.is_node and entry.ptr is not None:
                    yield node, entry, anchor

    def test_baseline_is_clean(self):
        check_structure(self.build_tree())

    def test_dangling_page_pointer(self):
        index = self.build_tree()
        _, entry, _ = next(self.page_entries(index))
        entry.ptr = 9999
        assert violation(index).invariant == "dangling-pointer"

    def test_local_depth_out_of_range(self):
        index = self.build_tree()
        node, entry, _ = next(self.page_entries(index))
        entry.h[0] = node.array.depths[0] + 1
        assert violation(index).invariant == "local-depth"

    def test_broken_buddy_sharing(self):
        index = self.build_tree()
        for node in tree_nodes(index):
            for address in range(len(node.array)):
                entry = node.array.get_at(address)
                if entry.h != list(node.array.depths):
                    # A multi-cell region: break the object sharing.
                    node.array.set_at(address, entry.clone())
                    assert violation(index).invariant == "region-uniform"
                    return
        pytest.skip("no multi-cell region in this tree")

    def test_unbalanced_leaf_depth(self):
        # A small tree keeps data pages directly under the root, so the
        # root is at level 1; faking a higher level breaks the balance
        # property (Theorem 3) without touching level arithmetic.
        index = BMEHTree(2, 4, widths=8)
        fill(index, random.Random(5), 10)
        root = index.store.peek(index.root_id)
        assert root.level == 1
        root.level = 2
        assert violation(index).invariant == "balance"

    def test_child_level_arithmetic(self):
        index = self.build_tree(400)
        root = index.store.peek(index.root_id)
        assert root.level > 1, "need a multi-level tree"
        child_entry = next(
            e for e, _ in distinct_entries(root) if e.is_node
        )
        child = index.store.peek(child_entry.ptr)
        child.level += 1
        assert violation(index).invariant == "level-arithmetic"

    def test_key_in_wrong_region(self):
        index = self.build_tree()
        entries = [e for _, e, _ in self.page_entries(index)]
        entries[0].ptr, entries[1].ptr = entries[1].ptr, entries[0].ptr
        assert violation(index).invariant == "key-prefix"

    def test_counter_drift(self):
        index = self.build_tree()
        index._num_keys += 1
        assert violation(index).invariant == "counter"

    def test_unpinned_root(self):
        index = self.build_tree()
        index.store.unpin(index.root_id)
        assert violation(index).invariant == "pinned-live"

    def test_orphaned_page_leaks(self):
        index = self.build_tree()
        index.store.allocate(object())  # a stranded sibling, say
        assert violation(index).invariant == "page-leak"

    def test_mdeh_bijectivity(self):
        index = MDEH(2, 4, widths=8)
        fill(index, random.Random(7), 120)
        check_structure(index)
        index._dir._cells.append(None)
        assert violation(index).invariant == "mapping-bijective"

    def test_mdeh_region_corruption(self):
        index = MDEH(2, 4, widths=8)
        fill(index, random.Random(7), 120)
        directory = index._dir
        for address in range(len(directory)):
            entry = directory.get_at(address)
            if entry.h != list(directory.depths):
                directory.set_at(address, entry.clone())
                assert violation(index).invariant == "region-uniform"
                return
        pytest.skip("no multi-cell region in this directory")

    def test_mdeh_counter_drift(self):
        index = MDEH(2, 4, widths=8)
        fill(index, random.Random(7), 120)
        index._num_keys -= 1
        assert violation(index).invariant == "counter"

    def test_extendible_array_roundtrip(self):
        array = ExtendibleArray(2)
        for axis in (0, 1, 0, 0):
            array.grow(axis)
        check_extendible_array(array)
        array._cells.append(None)
        with pytest.raises(InvariantViolation) as excinfo:
            check_extendible_array(array)
        assert excinfo.value.invariant == "mapping-bijective"

    def test_gridfile_unsorted_scale(self):
        index = GridFile(2, 4, widths=8)
        fill(index, random.Random(13), 150)
        scale = index._scales[0]
        assert len(scale) >= 2, "need at least two boundaries"
        scale[0], scale[1] = scale[1], scale[0]
        assert violation(index).invariant == "region-uniform"

    def test_gridfile_dangling_pointer(self):
        index = GridFile(2, 4, widths=8)
        fill(index, random.Random(13), 150)
        region = next(r for r in index._grid if r.ptr is not None)
        region.ptr = 9999
        assert violation(index).invariant == "dangling-pointer"

    def test_kdb_non_dyadic_box(self):
        index = KDBTree(2, 4, widths=8)
        fill(index, random.Random(17), 150)
        root = index.store.peek(index.root_id)
        entry = next(
            e for e in root.entries
            if e.box.highs[0] - e.box.lows[0] + 1 >= 4
        )
        entry.box = type(entry.box)(
            entry.box.lows,
            (entry.box.lows[0] + 2,) + tuple(entry.box.highs[1:]),
        )
        assert violation(index).invariant == "region-uniform"

    def test_kdb_dangling_pointer(self):
        index = KDBTree(2, 4, widths=8)
        fill(index, random.Random(17), 150)

        def leaf_entries(page):
            for entry in page.entries:
                if entry.is_region:
                    yield from leaf_entries(index.store.peek(entry.ptr))
                elif entry.ptr is not None:
                    yield entry

        entry = next(leaf_entries(index.store.peek(index.root_id)))
        entry.ptr = 9999
        assert violation(index).invariant == "dangling-pointer"

    def test_violation_reports_path(self):
        index = self.build_tree()
        _, entry, _ = next(self.page_entries(index))
        entry.ptr = 9999
        exc = violation(index)
        assert exc.scheme == "BMEHTree"
        assert exc.path, "the failure path must name the node chain"
        assert "dangling-pointer" in str(exc)


class TestSanitizerSampling:
    def test_rate_one_checks_every_mutation(self):
        sanitizer = Sanitizer(1.0)
        assert all(sanitizer.should_check() for _ in range(10))

    def test_fractional_rate_is_deterministic(self):
        first, second = (
            [s.should_check() for _ in range(100)]
            for s in (Sanitizer(0.25), Sanitizer(0.25))
        )
        assert sum(first) == 25
        assert first == second, "sampling must be reproducible"

    def test_rate_zero_never_checks(self):
        sanitizer = Sanitizer(0.0)
        assert not any(sanitizer.should_check() for _ in range(50))

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Sanitizer(1.5)

    def test_amortized_mode_bounds_check_frequency(self):
        index = BMEHTree(2, 4, widths=8)
        sanitizer = Sanitizer(1.0, amortize=True)
        small = BMEHTree(2, 4, widths=8)
        for _ in range(20):  # under 48 keys: still checked every mutation
            sanitizer.run(small)
        assert sanitizer.checks_run == 20
        fill(index, random.Random(21), 150)
        before = sanitizer.checks_run
        for _ in range(48):
            sanitizer.run(index)
        ran = sanitizer.checks_run - before
        # 150 keys -> a deep walk only every 150 // 48 = 3 mutations.
        assert 0 < ran < 48
        assert ran == 48 // (150 // 48)

    def test_sampled_context_still_ends_validated(self):
        index = BMEHTree(2, 4, widths=8)
        with sanitized(index, rate=0.1) as sanitizer:
            fill(index, random.Random(3), 50)
        assert sanitizer.mutations_seen == 50
        assert sanitizer.checks_run == 5  # plus the final deep check

    def test_env_flag_parsing(self, monkeypatch):
        for value, expected in [
            ("1", True), ("true", True), ("yes", True),
            ("0", False), ("false", False), ("off", False), ("", False),
        ]:
            monkeypatch.setenv("REPRO_SANITIZE", value)
            assert sanitize_enabled() is expected
        monkeypatch.delenv("REPRO_SANITIZE")
        assert sanitize_enabled() is False

    def test_env_rate_clamped(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE_RATE", "2.5")
        assert sanitize_rate() == 1.0
        monkeypatch.setenv("REPRO_SANITIZE_RATE", "0.25")
        assert sanitize_rate() == 0.25
        monkeypatch.setenv("REPRO_SANITIZE_RATE", "junk")
        assert sanitize_rate() == 1.0


class TestGlobalHooks:
    @pytest.fixture(autouse=True)
    def _clean_hooks(self):
        disable_global_sanitizer()
        yield
        disable_global_sanitizer()

    def test_install_and_uninstall(self):
        from repro.core.hashtree import HashTreeBase

        original = HashTreeBase.insert
        sanitizer = enable_global_sanitizer()
        assert global_sanitizer() is sanitizer
        assert getattr(HashTreeBase.insert, "__repro_sanitized__", False)
        assert enable_global_sanitizer() is sanitizer  # idempotent
        disable_global_sanitizer()
        assert HashTreeBase.insert is original
        assert global_sanitizer() is None

    def test_hooks_check_after_each_mutation(self):
        sanitizer = enable_global_sanitizer()
        index = BMEHTree(2, 4, widths=8)
        fill(index, random.Random(9), 30)
        assert sanitizer.checks_run >= 30

    def test_hooks_catch_corruption_on_next_insert(self):
        enable_global_sanitizer()
        index = BMEHTree(2, 4, widths=8)
        fill(index, random.Random(9), 30)
        index._num_keys += 3
        fresh = next(
            (a, b) for a in range(256) for b in range(256)
            if (a, b) not in index
        )
        with pytest.raises(InvariantViolation):
            index.insert(fresh, 0)

    def test_env_var_activates_on_import(self):
        code = (
            "import repro\n"
            "from repro.sanitize import global_sanitizer\n"
            "print(global_sanitizer() is not None)\n"
        )
        for flag, expected in [("1", "True"), ("0", "False")]:
            out = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, check=True,
                env={"REPRO_SANITIZE": flag, "PYTHONPATH": "src",
                     "PATH": "/usr/bin:/bin"},
                cwd=str(pathlib.Path(__file__).parent.parent),
            )
            assert out.stdout.strip() == expected


class TestLint:
    def test_backend_bypass_flagged(self):
        source = (
            "def read(backend, pid):\n"
            "    return backend.load(pid)\n"
        )
        issues = lint_source(source, "x.py")
        assert [i.code for i in issues] == ["REP101"]

    def test_backend_allowed_in_pagestore(self):
        source = "def read(backend, pid):\n    return backend.load(pid)\n"
        assert lint_source(source, "x.py", check_backend=False) == []

    def test_float_equality_flagged(self):
        issues = lint_source("ok = fill == 0.75\n", "x.py")
        assert [i.code for i in issues] == ["REP102"]
        assert lint_source("ok = fill >= 0.75\n", "x.py") == []

    def test_mutable_default_flagged(self):
        for default in ("[]", "{}", "dict()", "list()", "set()"):
            issues = lint_source(f"def f(x={default}):\n    pass\n", "x.py")
            assert [i.code for i in issues] == ["REP103"], default
        assert lint_source("def f(x=()):\n    pass\n", "x.py") == []

    def test_missing_annotation_flagged(self):
        source = "def public(x):\n    return x\n"
        issues = lint_source(source, "x.py", check_annotations=True)
        assert [i.code for i in issues] == ["REP104"]
        annotated = "def public(x: int) -> int:\n    return x\n"
        assert lint_source(annotated, "x.py", check_annotations=True) == []
        private = "def _helper(x):\n    return x\n"
        assert lint_source(private, "x.py", check_annotations=True) == []

    def test_wal_flush_bypass_flagged(self):
        for receiver in ("self._wal", "wal", "backend", "self._backend"):
            issues = lint_source(f"{receiver}.flush()\n", "x.py")
            assert [i.code for i in issues] == ["REP105"], receiver

    def test_store_flush_not_flagged(self):
        # PageStore.flush() is the sanctioned durability entry point.
        assert lint_source("store.flush()\n", "x.py") == []
        assert lint_source("self._store.flush()\n", "x.py") == []

    def test_wal_flush_allowed_in_storage_layer(self):
        assert lint_source(
            "self._wal.flush()\n", "x.py", check_backend=False
        ) == []

    def test_server_mutation_flagged(self):
        for call in (
            "file.insert(key, value)",
            "self._file.delete(key)",
            "index.insert_many(pairs)",
            "f.delete_many(keys)",
        ):
            issues = lint_source(
                f"{call}\n", "x.py", check_server_mutation=True
            )
            assert [i.code for i in issues] == ["REP106"], call

    def test_server_reads_not_flagged(self):
        for call in ("file.search(key)", "file.range_search(lo, hi)"):
            assert lint_source(
                f"{call}\n", "x.py", check_server_mutation=True
            ) == [], call

    def test_server_mutation_allowed_outside_server(self):
        assert lint_source(
            "file.insert(key, value)\n", "x.py"
        ) == []

    def test_server_tree_is_clean_but_would_be_flagged(self):
        # The real server modules pass lint only because the aggregator
        # is the sanctioned mutation site: the same source re-linted
        # *with* the flag (as lint_paths applies it to everything under
        # server/ except the aggregator) must trip on the aggregator's
        # own apply thunks — proving the rule has teeth.
        import pathlib

        from repro.sanitize import lint_paths

        root = pathlib.Path(__file__).parent.parent / "src" / "repro"
        assert lint_paths([str(root / "server")]) == []
        source = (root / "server" / "aggregator.py").read_text()
        issues = lint_source(
            source, "aggregator.py", check_server_mutation=True
        )
        assert issues and {i.code for i in issues} == {"REP106"}

    def test_hot_path_json_flagged(self):
        # REP107: every spelling that reaches the json codec functions.
        for snippet in (
            "import json\njson.dumps(payload)\n",
            "import json\njson.loads(body)\n",
            "import json as j\nj.dumps(payload)\n",
            "from json import dumps\ndumps(payload)\n",
            "from json import loads as parse\nparse(body)\n",
            "import json\njson.dump(payload, fh)\n",
        ):
            issues = lint_source(snippet, "x.py", check_hot_json=True)
            assert [i.code for i in issues] == ["REP107"], snippet

    def test_hot_path_json_not_flagged_without_flag(self):
        assert lint_source(
            "import json\njson.dumps(payload)\n", "x.py"
        ) == []

    def test_hot_path_json_ignores_other_modules(self):
        # pickle.loads, struct.pack, a local loads() helper: not json.
        for snippet in (
            "import pickle\npickle.loads(blob)\n",
            "def loads(x):\n    return x\nloads(body)\n",
            "obj.dumps(payload)\n",
        ):
            assert lint_source(
                snippet, "x.py", check_hot_json=True
            ) == [], snippet

    def test_hot_path_json_scoping(self):
        # lint_paths exempts exactly the textual-fallback owners: the
        # frame codec, the payload codec's JSON escape hatch, and the
        # topology file — every other server module is hot path.
        import pathlib

        from repro.sanitize import lint_paths

        root = pathlib.Path(__file__).parent.parent / "src" / "repro"
        assert lint_paths([str(root / "server")]) == []
        source = (root / "server" / "protocol.py").read_text()
        issues = lint_source(source, "protocol.py", check_hot_json=True)
        assert issues and {i.code for i in issues} == {"REP107"}

    def test_replica_mutation_flagged(self):
        # REP108: the full mutation surface a follower must not touch —
        # index mutators, store-level mutators, and .write() on a
        # store/index-named receiver.
        for call in (
            "self._file.insert(key, value)",
            "file.delete(key)",
            "index.insert_many(pairs)",
            "self._store.allocate(page)",
            "store.free(pid)",
            "self._store.mark_dirty(pid)",
            "store.write(pid, page)",
            "self._index.write(pid, page)",
        ):
            issues = lint_source(
                f"{call}\n", "x.py", check_replica_mutation=True
            )
            assert "REP108" in [i.code for i in issues], call

    def test_replica_replication_channel_not_flagged(self):
        # apply_replicated is the one sanctioned mutation channel, and
        # reads plus non-store .write() receivers stay clean.
        for call in (
            "backend.apply_replicated(ops, meta)",
            "self._backend.apply_replicated(ops, None)",
            "file.search(key)",
            "file.range_search(lo, hi)",
            "store.read(pid)",
            "writer.write(frame)",  # a socket, not a store
            "conn.write(data)",
        ):
            assert lint_source(
                f"{call}\n", "x.py", check_replica_mutation=True
            ) == [], call

    def test_replica_mutation_scoped_to_replica_module(self):
        # lint_paths applies REP108 only to server/replica.py; the same
        # mutation in another server file is REP106's business, and the
        # real replica module must be clean under its own rule — while a
        # seeded mutation in replica.py source would be caught.
        import pathlib

        from repro.sanitize import lint_paths

        root = pathlib.Path(__file__).parent.parent / "src" / "repro"
        assert lint_paths([str(root / "server" / "replica.py")]) == []
        source = (root / "server" / "replica.py").read_text()
        seeded = source + (
            "\n\ndef _rogue(self):\n"
            "    self._store.allocate({})\n"
        )
        issues = lint_source(
            seeded, "server/replica.py", check_replica_mutation=True
        )
        assert "REP108" in {i.code for i in issues}
        # The unseeded module is REP108-clean by construction.
        assert "REP108" not in {
            i.code
            for i in lint_source(
                source, "server/replica.py", check_replica_mutation=True
            )
        }

    def test_syntax_error_reported(self):
        issues = lint_source("def broken(:\n", "x.py")
        assert [i.code for i in issues] == ["REP100"]

    def test_issue_format(self):
        issue = lint_source("ok = x == 1.5\n", "src/y.py")[0]
        assert str(issue).startswith("src/y.py:1:")
        assert "REP102" in str(issue)

    def test_repo_lints_clean(self):
        assert lint_paths() == []

    def test_dotted_mutable_default_flagged(self):
        # REP103 must see through dotted constructors: the substring
        # matcher is on the terminal name, so module-qualified forms and
        # bytearray() are the same aliasing bug as a bare dict().
        for default in (
            "collections.defaultdict(list)",
            "collections.OrderedDict()",
            "bytearray()",
            "collections.deque()",
        ):
            issues = lint_source(
                f"import collections\ndef f(x={default}):\n    pass\n",
                "x.py",
            )
            assert [i.code for i in issues] == ["REP103"], default
        # Immutable / unknown dotted calls stay clean.
        for default in ("collections.abc.Hashable", "frozenset()", "f()"):
            assert lint_source(
                f"def g(x={default}):\n    pass\n", "x.py"
            ) == [], default


class TestAliasRegression:
    """The false-negative pair that motivated the dataflow engine.

    The legacy substring linter keys REP101/REP105 off the receiver
    *name* containing ``backend``/``wal`` — so laundering the object
    through a neutral local hides the bypass completely.  The typed
    analyzer tracks the assignment, so the same source is caught.
    """

    SOURCE = (
        "class Reader:\n"
        "    def __init__(self) -> None:\n"
        "        self._backend = FileBackend('x.db')\n"
        "\n"
        "    def sneaky(self, pid: int) -> object:\n"
        "        alias = self._backend\n"
        "        alias.flush()\n"
        "        return alias.load(pid)\n"
    )

    def test_legacy_linter_misses_alias(self):
        # Documented false negative: 'alias' carries no tell-tale name.
        assert lint_source(self.SOURCE, "src/repro/core/x.py") == []

    def test_dataflow_analyzer_catches_alias(self):
        from repro.sanitize import analyze_source

        issues = analyze_source(self.SOURCE, "src/repro/core/x.py")
        codes = sorted(i.code for i in issues)
        assert codes == ["REP101", "REP105"]
        # Findings land on the use sites, not the assignment.
        by_code = {i.code: i for i in issues}
        assert by_code["REP105"].line == 7
        assert by_code["REP101"].line == 8

    def test_analyzer_respects_storage_allowlist(self):
        from repro.sanitize import analyze_source

        # The same source inside the accounting layer is sanctioned.
        assert analyze_source(
            self.SOURCE, "src/repro/storage/disk.py"
        ) == []
