"""Attribute-space partition analysis (Figure 5 machinery)."""

import pytest

from repro import BMEHTree, MDEH
from repro.analysis import (
    assert_exact_tiling,
    covering_cells,
    occupancy_histogram,
    partition_cells,
)
from repro.analysis.space import _dyadic_overlap
from repro.core.interface import LeafRegion
from repro.workloads import uniform_keys, unique


@pytest.fixture(scope="module")
def tree():
    index = BMEHTree(2, 4, widths=8)
    for i, key in enumerate(unique(uniform_keys(500, 2, seed=100, domain=256))):
        index.insert(key, i)
    return index


class TestLeafRegion:
    def test_bounds(self):
        region = LeafRegion((0b10, 0b1), (2, 1), page=3)
        lows, highs = region.bounds((4, 4))
        assert lows == (0b1000, 0b1000)
        assert highs == (0b1011, 0b1111)

    def test_volume(self):
        region = LeafRegion((0, 0), (2, 1), page=None)
        assert region.volume((4, 4)) == 4 * 8

    def test_zero_depth_covers_domain(self):
        region = LeafRegion((0, 0), (0, 0), page=None)
        assert region.volume((8, 8)) == 65536


class TestDyadicOverlap:
    def test_identical_regions_overlap(self):
        a = LeafRegion((1, 2), (2, 3), None)
        assert _dyadic_overlap(a, a)

    def test_nested_regions_overlap(self):
        outer = LeafRegion((1,), (1,), None)
        inner = LeafRegion((0b10,), (2,), None)
        assert _dyadic_overlap(outer, inner)
        assert _dyadic_overlap(inner, outer)

    def test_disjoint_regions(self):
        a = LeafRegion((0b10,), (2,), None)
        b = LeafRegion((0b11,), (2,), None)
        assert not _dyadic_overlap(a, b)

    def test_mixed_dimensions(self):
        a = LeafRegion((0, 0), (1, 1), None)
        b = LeafRegion((0, 1), (1, 1), None)  # same axis 0, other axis 1
        assert not _dyadic_overlap(a, b)


class TestTiling:
    def test_fresh_index_is_one_region(self):
        index = BMEHTree(2, 4, widths=8)
        cells = assert_exact_tiling(index)
        assert len(cells) == 1
        assert cells[0].page is None

    def test_built_index_tiles_exactly(self, tree):
        cells = assert_exact_tiling(tree)
        assert len(cells) == len(partition_cells(tree))
        assert len(cells) > 10

    def test_tiling_detects_breakage(self, tree):
        cells = partition_cells(tree)
        volume = sum(c.volume(tree.widths) for c in cells)
        assert volume == 1 << 16


class TestCoveringCells:
    def test_whole_domain_covers_everything(self, tree):
        assert covering_cells(tree, (0, 0), (255, 255)) == len(
            partition_cells(tree)
        )

    def test_point_covers_one_cell(self, tree):
        assert covering_cells(tree, (7, 7), (7, 7)) == 1

    def test_monotone_in_box_size(self, tree):
        small = covering_cells(tree, (10, 10), (50, 50))
        large = covering_cells(tree, (10, 10), (200, 200))
        assert small <= large


class TestOccupancy:
    def test_histogram_sums_to_key_count(self, tree):
        histogram = occupancy_histogram(tree)
        total = sum(size * count for size, count in histogram.items())
        assert total == len(tree)

    def test_no_page_exceeds_capacity(self, tree):
        histogram = occupancy_histogram(tree)
        assert max(histogram) <= tree.page_capacity

    def test_mdeh_histogram_matches(self):
        keys = unique(uniform_keys(300, 2, seed=101, domain=256))
        index = MDEH(2, 4, widths=8)
        for key in keys:
            index.insert(key)
        histogram = occupancy_histogram(index)
        assert sum(s * c for s, c in histogram.items()) == len(keys)
