"""Structural tests specific to the K-D-B-tree baseline."""

import pytest

from repro import BMEHTree, KDBTree
from repro.analysis import assert_exact_tiling
from repro.workloads import normal_keys, uniform_keys, unique


def build(keys, b=4, widths=8, fanout=16):
    index = KDBTree(2, b, widths=widths, region_capacity=fanout)
    for i, key in enumerate(keys):
        index.insert(key, i)
    return index


def point_page_depths(index):
    depths = []

    def walk(page_id, depth):
        page = index.store.peek(page_id)
        for entry in page.entries:
            if entry.is_region:
                walk(entry.ptr, depth + 1)
            else:
                depths.append(depth)

    walk(index.root_id, 1)
    return depths


class TestStructure:
    def test_fresh_tree(self):
        t = KDBTree(2, 4, widths=8)
        assert t.height() == 1
        assert t.region_page_count == 1
        t.check_invariants()

    def test_region_capacity_validated(self):
        with pytest.raises(ValueError):
            KDBTree(2, 4, widths=8, region_capacity=1)

    def test_point_pages_all_at_same_depth(self):
        """Robinson's balance property: only root splits add levels."""
        index = build(unique(uniform_keys(800, 2, seed=160, domain=256)), b=2)
        assert len(set(point_page_depths(index))) == 1

    def test_balance_under_skew(self):
        index = build(unique(normal_keys(800, 2, seed=161, domain=256)), b=2)
        assert len(set(point_page_depths(index))) == 1
        index.check_invariants()

    def test_boxes_tile_exactly(self):
        index = build(unique(uniform_keys(600, 2, seed=162, domain=256)))
        assert_exact_tiling(index)

    def test_directory_size_counts_fanout_slots(self):
        index = build(unique(uniform_keys(500, 2, seed=163, domain=256)))
        assert index.directory_size == index.region_page_count * index.fanout

    def test_search_cost_is_height_plus_page(self):
        index = build(unique(uniform_keys(700, 2, seed=164, domain=256)), b=2)
        keys = [k for k, _ in index.items()][:60]
        before = index.store.stats.snapshot()
        for key in keys:
            index.search(key)
        reads = index.store.stats.delta(before).reads / len(keys)
        # Root pinned: (height - 1) region reads + 1 data page.
        assert reads == pytest.approx(index.height() - 1 + 1)


class TestDownwardSplits:
    def test_crossing_children_are_cut(self):
        """Axis-aligned stripes force region splits whose planes cross
        child boxes — Robinson's defining case."""
        keys = [(x, 0) for x in range(256)] + [(x, 255) for x in range(128)]
        index = KDBTree(2, 2, widths=8, region_capacity=4)
        for key in keys:
            index.insert(key)
        index.check_invariants()
        for key in keys:
            assert key in index
        assert len(set(point_page_depths(index))) == 1

    def test_small_fanout_deepens_tree(self):
        keys = unique(uniform_keys(600, 2, seed=165, domain=256))
        shallow = build(keys, b=2, fanout=32)
        deep = build(keys, b=2, fanout=4)
        assert deep.height() > shallow.height()
        deep.check_invariants()


class TestComparisonWithBMEH:
    def test_same_record_set_same_answers(self):
        keys = unique(normal_keys(600, 2, seed=166, domain=256))
        kdb = build(keys, b=4)
        bmeh = BMEHTree(2, 4, widths=8)
        for i, key in enumerate(keys):
            bmeh.insert(key, i)
        box = ((64, 64), (192, 160))
        a = sorted(k for k, _ in kdb.range_search(*box))
        b = sorted(k for k, _ in bmeh.range_search(*box))
        assert a == b

    def test_both_balanced_under_skew(self):
        keys = unique(normal_keys(700, 2, seed=167, domain=256))
        kdb = build(keys, b=2)
        assert len(set(point_page_depths(kdb))) == 1
