"""Seeded-violation suite for the dataflow static analyzer.

Every REP2xx/REP3xx rule is proven to *fire* on at least two seeded
reproducers — one plain, one obscured through an alias or ``getattr``
laundering — and to stay silent on the disciplined variant of the same
code.  A rule that never fires is vacuous; a rule that fires on clean
code is noise.  Both directions are pinned here.

The suite also locks down the analyzer's supporting machinery: CFG
exception edges, suppression comments (including REP400 for stale
ones), path scoping (POSIX and Windows-style separators), the
lock-order DOT rendering, and the zero-findings contract over the
shipped tree.
"""

from __future__ import annotations

import ast
import pathlib

from repro.sanitize import analyze_paths, analyze_source
from repro.sanitize.static import (
    LockOrderAnalyzer,
    Suppressions,
    build_cfg,
)

SRC = "src/repro/core/mod.py"      # src-scoped rules active
TEST = "tests/test_mod.py"         # only REP2xx/REP3xx active


def codes(source: str, path: str = TEST) -> list[str]:
    return [i.code for i in analyze_source(source, path)]


class TestREP201BlockingInAsync:
    def test_time_sleep_in_async(self):
        source = (
            "import time\n"
            "async def handler():\n"
            "    time.sleep(1)\n"
        )
        assert codes(source) == ["REP201"]

    def test_blocking_store_read_through_alias(self):
        source = (
            "async def handler():\n"
            "    s = PageStore(MemoryBackend())\n"
            "    t = s\n"
            "    return t.read(7)\n"
        )
        assert codes(source) == ["REP201"]

    def test_sync_latch_with_in_async(self):
        source = (
            "async def handler(latch):\n"
            "    with latch.write():\n"
            "        pass\n"
        )
        assert codes(source) == ["REP201"]

    def test_await_and_executor_are_clean(self):
        source = (
            "import asyncio\n"
            "async def handler(loop, store):\n"
            "    await asyncio.sleep(1)\n"
            "    return await loop.run_in_executor(None, store.read, 7)\n"
        )
        assert codes(source) == []

    def test_sync_function_may_block(self):
        assert codes("import time\ndef work():\n    time.sleep(1)\n") == []


class TestREP202LatchLeak:
    def test_acquire_without_release_on_exception_path(self):
        source = (
            "def update(latch, store):\n"
            "    latch.acquire_write()\n"
            "    store.write(7, 'x')\n"  # may raise: latch held forever
            "    latch.release_write()\n"
        )
        found = analyze_source(source, TEST)
        assert [i.code for i in found] == ["REP202"]
        assert "exception" in found[0].message

    def test_alias_obscured_leak(self):
        source = (
            "def leak():\n"
            "    l = ReadWriteLatch()\n"
            "    m = l\n"
            "    m.acquire_write()\n"
        )
        assert codes(source) == ["REP202"]

    def test_release_in_finally_is_clean(self):
        source = (
            "def update(latch, store):\n"
            "    latch.acquire_write()\n"
            "    try:\n"
            "        store.write(7, 'x')\n"
            "    finally:\n"
            "        latch.release_write()\n"
        )
        assert codes(source) == []

    def test_with_block_is_clean(self):
        source = (
            "def update(latch, store):\n"
            "    with latch.write():\n"
            "        store.write(7, 'x')\n"
        )
        assert codes(source) == []

    def test_async_with_gate_is_clean(self):
        source = (
            "async def serve(gate, results):\n"
            "    async with gate.read_locked():\n"
            "        return results[7]\n"
        )
        assert codes(source) == []


class TestREP203LockOrder:
    CYCLE = (
        "import threading\n"
        "a_lock = threading.Lock()\n"
        "b_lock = threading.Lock()\n"
        "def forward():\n"
        "    with a_lock:\n"
        "        with b_lock:\n"
        "            pass\n"
        "def backward():\n"
        "    with b_lock:\n"
        "        with a_lock:\n"
        "            pass\n"
    )

    def test_opposite_order_cycle(self):
        found = analyze_source(self.CYCLE, TEST)
        assert [i.code for i in found] == ["REP203"]
        assert "a_lock" in found[0].message and "b_lock" in found[0].message

    def test_cycle_through_callee(self):
        # backward() only takes b then *calls* a helper that takes a:
        # the cycle exists only in the interprocedural closure.
        source = (
            "import threading\n"
            "a_lock = threading.Lock()\n"
            "b_lock = threading.Lock()\n"
            "def forward():\n"
            "    with a_lock:\n"
            "        with b_lock:\n"
            "            pass\n"
            "def helper():\n"
            "    with a_lock:\n"
            "        pass\n"
            "def backward():\n"
            "    with b_lock:\n"
            "        helper()\n"
        )
        assert codes(source) == ["REP203"]

    def test_consistent_order_is_clean(self):
        source = (
            "import threading\n"
            "a_lock = threading.Lock()\n"
            "b_lock = threading.Lock()\n"
            "def one():\n"
            "    with a_lock:\n"
            "        with b_lock:\n"
            "            pass\n"
            "def two():\n"
            "    with a_lock:\n"
            "        with b_lock:\n"
            "            pass\n"
        )
        assert codes(source) == []

    def test_dot_rendering_marks_cycle(self):
        analyzer = LockOrderAnalyzer()
        analyzer.add_module(ast.parse(self.CYCLE), TEST)
        graph = analyzer.build()
        dot = graph.to_dot()
        assert dot.startswith("digraph lockorder")
        assert '"a_lock" -> "b_lock"' in dot
        assert '"b_lock" -> "a_lock"' in dot
        assert 'color="red"' in dot  # cyclic edges are highlighted
        # Witness locations ride along as edge labels.
        assert f"{TEST}:6" in dot


class TestREP301UnpairedGroup:
    def test_begin_without_end(self):
        source = (
            "def batch(backend):\n"
            "    backend.begin_group()\n"
            "    backend.store(1, 'x')\n"
        )
        found = analyze_source(source, TEST)
        assert "REP301" in [i.code for i in found]

    def test_getattr_obscured_begin(self):
        source = (
            "def batch(store):\n"
            "    begin = getattr(store.backend, 'begin_group', None)\n"
            "    begin()\n"
        )
        assert codes(source) == ["REP301"]

    def test_paired_on_all_paths_is_clean(self):
        source = (
            "def batch(backend, items):\n"
            "    backend.begin_group()\n"
            "    try:\n"
            "        for page_id, obj in items:\n"
            "            backend.store(page_id, obj)\n"
            "    except Exception:\n"
            "        backend.end_group(commit=False)\n"
            "        raise\n"
            "    else:\n"
            "        backend.end_group(commit=True)\n"
        )
        assert codes(source) == []


class TestREP302MutationOutsideGroup:
    def test_batch_executor_mutates_without_group(self):
        source = (
            "class Runner:\n"
            "    def insert_many(self, pairs: list) -> None:\n"
            "        for k, v in pairs:\n"
            "            self._index.insert(k, v)\n"
        )
        assert codes(source, SRC) == ["REP302"]

    def test_alias_obscured_index(self):
        source = (
            "class Runner:\n"
            "    def delete_many(self, keys: list) -> None:\n"
            "        target = self._index\n"
            "        for k in keys:\n"
            "            target.delete(k)\n"
        )
        assert codes(source, SRC) == ["REP302"]

    def test_mutation_inside_group_is_clean(self):
        source = (
            "class Runner:\n"
            "    def insert_many(self, pairs: list) -> None:\n"
            "        with self._store.group():\n"
            "            for k, v in pairs:\n"
            "                self._index.insert(k, v)\n"
        )
        assert codes(source, SRC) == []

    def test_non_executor_function_exempt(self):
        # Only the named batch executors carry the group obligation.
        source = (
            "class Runner:\n"
            "    def insert_one(self, k: int, v: str) -> None:\n"
            "        self._index.insert(k, v)\n"
        )
        assert codes(source, SRC) == []


class TestREP303FlushInsideGroup:
    def test_backend_flush_inside_group(self):
        source = (
            "def batch(store, backend):\n"
            "    with store.group():\n"
            "        backend.flush()\n"
        )
        assert codes(source) == ["REP303"]

    def test_checkpoint_inside_group(self):
        source = (
            "def batch(store, index):\n"
            "    with store.group():\n"
            "        checkpoint(index)\n"
        )
        assert codes(source) == ["REP303"]

    def test_alias_obscured_flush(self):
        source = (
            "def batch(store):\n"
            "    b = store.backend\n"
            "    with store.group():\n"
            "        b.flush()\n"
        )
        assert codes(source) == ["REP303"]

    def test_flush_after_group_is_clean(self):
        source = (
            "def batch(store, backend):\n"
            "    with store.group():\n"
            "        pass\n"
            "    backend.flush()\n"
        )
        assert codes(source) == []


class TestSuppressions:
    # The marker is assembled at runtime: a literal one in this file
    # would register as a suppression site when the analyzer scans the
    # test suite itself.
    ALLOW = "# repro: " + "allow"

    def test_trailing_comment_suppresses(self):
        source = (
            "import time\n"
            "async def handler():\n"
            f"    time.sleep(1)  {self.ALLOW}[REP201]\n"
        )
        assert codes(source) == []

    def test_standalone_comment_covers_next_line(self):
        source = (
            "import time\n"
            "async def handler():\n"
            f"    {self.ALLOW}[REP201] — the block is deliberate\n"
            "    time.sleep(1)\n"
        )
        assert codes(source) == []

    def test_unused_suppression_is_rep400(self):
        source = (
            "import time\n"
            "def handler():\n"
            f"    time.sleep(1)  {self.ALLOW}[REP201]\n"
        )
        found = analyze_source(source, TEST)
        assert [i.code for i in found] == ["REP400"]
        assert "REP201" in found[0].message

    def test_suppression_is_code_specific(self):
        source = (
            "import time\n"
            "async def handler():\n"
            f"    time.sleep(1)  {self.ALLOW}[REP303]\n"
        )
        found = analyze_source(source, TEST)
        assert sorted(i.code for i in found) == ["REP201", "REP400"]

    def test_multiple_codes_in_one_comment(self):
        supp = Suppressions(f"x = 1  {self.ALLOW}[REP201, REP303]\n")
        assert supp.by_line[1] == {"REP201", "REP303"}


class TestPathScoping:
    ALIAS = (
        "class Reader:\n"
        "    def __init__(self) -> None:\n"
        "        self._backend = FileBackend('x.db')\n"
        "\n"
        "    def sneaky(self, pid: int) -> object:\n"
        "        alias = self._backend\n"
        "        alias.load(pid)\n"
    )

    def test_typed_rep101_only_in_src(self):
        assert codes(self.ALIAS, SRC) == ["REP101"]
        assert codes(self.ALIAS, TEST) == []

    def test_storage_allowlist_exempt(self):
        assert codes(self.ALIAS, "src/repro/storage/wal.py") == []

    def test_windows_style_core_path(self, tmp_path):
        # lint_paths' annotation scoping has a branch for
        # backslash-separated paths; a literal 'repro\\core\\mod.py'
        # file name on POSIX exercises it.
        from repro.sanitize import lint_paths

        victim = tmp_path / "repro\\core\\mod.py"
        victim.write_text("def public(x):\n    return x\n")
        found = lint_paths([str(victim)])
        assert [i.code for i in found] == ["REP104"]

    def test_windows_style_server_path(self, tmp_path):
        from repro.sanitize import lint_paths

        victim = tmp_path / "repro\\server\\handlers.py"
        victim.write_text("def go(file, k, v):\n    file.insert(k, v)\n")
        found = lint_paths([str(victim)])
        assert [i.code for i in found] == ["REP106"]


class TestCFG:
    def _cfg(self, source: str):
        func = ast.parse(source).body[0]
        return build_cfg(func)

    def test_call_has_exception_edge(self):
        cfg = self._cfg("def f(x):\n    x.go()\n    return 1\n")
        exc_targets = {
            dst.kind
            for node in cfg.nodes
            for dst, kind in node.succ
            if kind == "exc"
        }
        # The call may raise: its exc edge must route to the function's
        # raise-exit, where leak checks run.
        assert "raise" in exc_targets

    def test_finally_reached_from_both_paths(self):
        source = (
            "def f(x):\n"
            "    try:\n"
            "        x.go()\n"
            "    finally:\n"
            "        x.done()\n"
        )
        cfg = self._cfg(source)
        (done,) = [
            n for n in cfg.nodes
            if n.kind == "stmt" and "done" in ast.dump(n.payload)
        ]
        # The finally body is built once; its tails fan out to both the
        # normal continuation and the exception propagation path, so
        # dataflow facts reach it from either side.
        succ_kinds = {dst.kind for dst, _ in done.succ}
        assert "raise" in succ_kinds          # re-raise after cleanup
        assert succ_kinds & {"exit", "join"}  # normal fall-through

    def test_pytest_raises_swallows_exception(self):
        # Code after a pytest.raises block is reachable even though the
        # body raised — the manager swallows; a latch released *after*
        # the block therefore still counts on the exc path.
        source = (
            "def f(latch, store):\n"
            "    latch.acquire_read()\n"
            "    try:\n"
            "        with pytest.raises(ValueError):\n"
            "            store.write(1, 'x')\n"
            "    finally:\n"
            "        latch.release_read()\n"
        )
        assert codes(source) == []


class TestShippedTree:
    def test_repo_analyzes_clean(self):
        root = pathlib.Path(__file__).parent.parent
        report = analyze_paths(
            [root / "src", root / "tests", root / "benchmarks"]
        )
        assert report.issues == []

    def test_lock_order_graph_is_acyclic_dag(self):
        root = pathlib.Path(__file__).parent.parent
        report = analyze_paths([root / "src"])
        graph = report.graph
        assert graph.cycles() == []
        # The documented discipline: gate before latch before the
        # server read-mutex; latch before the pool frame lock.
        edges = {(a, b) for (a, b) in graph.edges}
        assert ("ReadWriteGate", "ReadWriteLatch") in edges
        assert ("ReadWriteLatch", "PageStore._frame_lock") in edges
        dot = graph.to_dot()
        assert "color=red" not in dot
