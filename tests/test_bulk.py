"""Bulk loading and z-order interleaving."""

import pytest
from hypothesis import given, strategies as st

from repro import BMEHTree
from repro.bits import deinterleave, interleave
from repro.core import bulk_load
from repro.errors import DuplicateKeyError
from repro.workloads import normal_keys, uniform_keys, unique


def items_of(keys):
    return [(k, i) for i, k in enumerate(keys)]


class TestZOrder:
    def test_known_interleaving(self):
        # codes (0b10, 0b01) with widths (2, 2) -> bits 1,0,0,1.
        assert interleave((0b10, 0b01), (2, 2)) == 0b1001

    def test_unequal_widths(self):
        # widths (2, 1): order is x1,y1,x2 (y exhausted after bit 1).
        assert interleave((0b11, 0b0), (2, 1)) == 0b101

    def test_arity_checked(self):
        with pytest.raises(ValueError):
            interleave((1,), (2, 2))

    @given(
        st.tuples(st.integers(0, 255), st.integers(0, 31), st.integers(0, 7))
    )
    def test_roundtrip(self, codes):
        widths = (8, 5, 3)
        assert deinterleave(interleave(codes, widths), widths) == codes

    @given(st.lists(st.tuples(st.integers(0, 63), st.integers(0, 63)),
                    min_size=2, max_size=40, unique=True))
    def test_zorder_groups_prefix_siblings(self, keys):
        """Sorting by z-order puts keys sharing deep prefixes adjacent:
        consecutive interleaved values share at least as long a common
        prefix as any pair that the sort separated."""
        widths = (6, 6)
        values = sorted(interleave(k, widths) for k in keys)
        assert values == sorted(values)
        assert len(set(values)) == len(keys)  # interleaving is injective


class TestBulkLoad:
    def test_partition_matches_incremental(self):
        keys = unique(uniform_keys(1500, 2, seed=140, domain=65536))
        incremental = BMEHTree(2, 8, widths=16)
        for key, value in items_of(keys):
            incremental.insert(key, value)
        bulk = bulk_load(BMEHTree(2, 8, widths=16), items_of(keys))
        bulk.check_invariants()
        a = sorted((c.prefixes, c.depths) for c in incremental.leaf_regions())
        b = sorted((c.prefixes, c.depths) for c in bulk.leaf_regions())
        assert a == b

    def test_same_height_and_similar_nodes(self):
        keys = unique(normal_keys(1500, 2, seed=141, domain=65536))
        incremental = BMEHTree(2, 8, widths=16)
        for key, value in items_of(keys):
            incremental.insert(key, value)
        bulk = bulk_load(BMEHTree(2, 8, widths=16), items_of(keys))
        assert bulk.height() == incremental.height()
        assert bulk.node_count <= incremental.node_count + 2

    def test_io_savings(self):
        keys = unique(uniform_keys(1500, 2, seed=142, domain=65536))
        incremental = BMEHTree(2, 8, widths=16)
        for key, value in items_of(keys):
            incremental.insert(key, value)
        bulk = bulk_load(BMEHTree(2, 8, widths=16), items_of(keys))
        assert bulk.store.stats.accesses * 3 < incremental.store.stats.accesses

    def test_queries_after_bulk_load(self):
        keys = unique(uniform_keys(800, 2, seed=143, domain=65536))
        bulk = bulk_load(BMEHTree(2, 8, widths=16), items_of(keys))
        for i, key in enumerate(keys):
            assert bulk.search(key) == i
        lo, hi = (1000, 1000), (40000, 30000)
        got = sorted(k for k, _ in bulk.range_search(lo, hi))
        want = sorted(
            k for k in keys if lo[0] <= k[0] <= hi[0] and lo[1] <= k[1] <= hi[1]
        )
        assert got == want

    def test_mutations_after_bulk_load(self):
        keys = unique(uniform_keys(600, 2, seed=144, domain=65536))
        bulk = bulk_load(BMEHTree(2, 8, widths=16), items_of(keys))
        for key in keys[:200]:
            bulk.delete(key)
        extra = unique(uniform_keys(300, 2, seed=145, domain=65536))
        for key in extra:
            if key not in bulk:
                bulk.insert(key, "post")
        bulk.check_invariants()

    def test_empty_and_tiny_loads(self):
        empty = bulk_load(BMEHTree(2, 8, widths=16), [])
        assert len(empty) == 0
        empty.check_invariants()
        one = bulk_load(BMEHTree(2, 8, widths=16), [((5, 5), "x")])
        assert one.search((5, 5)) == "x"
        one.check_invariants()

    def test_rejects_non_empty_index(self):
        index = BMEHTree(2, 8, widths=16)
        index.insert((1, 1))
        with pytest.raises(ValueError):
            bulk_load(index, [((2, 2), None)])

    def test_rejects_duplicates(self):
        with pytest.raises(DuplicateKeyError):
            bulk_load(
                BMEHTree(2, 8, widths=16),
                [((1, 1), "a"), ((1, 1), "b")],
            )

    def test_per_dim_policy(self):
        keys = unique(uniform_keys(700, 2, seed=146, domain=65536))
        bulk = bulk_load(
            BMEHTree(2, 8, widths=16, node_policy="per_dim"), items_of(keys)
        )
        bulk.check_invariants()
        for i, key in enumerate(keys):
            assert bulk.search(key) == i
