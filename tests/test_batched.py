"""Batched execution engine: ``*_many`` equivalence, shared-prefix
descent accounting, WAL group commit, and the parallel range scanner.

The contract under test: a batch must be *observationally identical* to
the op-at-a-time sequence it replaces — same final structure, same
results, same sanitizer verdicts — while strictly cheaper in logical
reads (tree schemes amortize the directory spine; the one-level scheme
holds its directory page) and, on a WAL backend, one commit record for
the whole batch.
"""

import random
import threading

import pytest

from repro import BMEHTree, MDEH, MEHTree
from repro.bits import interleave
from repro.core.rangequery import RangeQuery, scan_parallel
from repro.errors import DuplicateKeyError, KeyNotFoundError
from repro.sanitize import check_structure, sanitized
from repro.storage import (
    FileBackend,
    PageStore,
    ReadWriteLatch,
    WALBackend,
    recover_index,
)
from repro.workloads import normal_keys, uniform_keys, unique

SCHEMES = [
    pytest.param(MDEH, id="mdeh"),
    pytest.param(MEHTree, id="meh"),
    pytest.param(BMEHTree, id="bmeh"),
]

WIDTHS = (16, 16)


def make(scheme, b=4, store=None):
    return scheme(dims=2, page_capacity=b, widths=16, store=store)


def zsorted(keys):
    return sorted(keys, key=lambda k: interleave(tuple(k), WIDTHS))


def shuffled(keys, seed):
    keys = list(keys)
    random.Random(seed).shuffle(keys)
    return keys


def state_of(index):
    index.check_invariants()
    return dict(index.items()), len(index)


@pytest.mark.parametrize("scheme", SCHEMES)
class TestBatchEquivalence:
    """``*_many`` must land the exact op-at-a-time state."""

    def test_insert_many_matches_singles(self, scheme):
        keys = unique(uniform_keys(400, 2, seed=71, domain=65536))
        values = {key: i for i, key in enumerate(keys)}
        singles = make(scheme)
        for key in zsorted(keys):
            singles.insert(key, values[key])
        batched = make(scheme)
        inserted = batched.insert_many(
            [(key, values[key]) for key in shuffled(keys, 5)]
        )
        assert inserted == len(keys)
        assert state_of(batched) == state_of(singles)

    def test_shuffled_and_sorted_batches_agree(self, scheme):
        keys = unique(normal_keys(300, 2, seed=72, domain=65536))
        pairs = [(key, i) for i, key in enumerate(keys)]
        a = make(scheme)
        a.insert_many(pairs)
        b = make(scheme)
        b.insert_many(
            [pairs[i] for i in shuffled(range(len(pairs)), 6)]
        )
        assert state_of(a) == state_of(b)

    def test_search_many_input_order(self, scheme):
        keys = unique(uniform_keys(250, 2, seed=73, domain=65536))
        index = make(scheme)
        index.insert_many([(key, i) for i, key in enumerate(keys)])
        probe = shuffled(keys, 7)[:64]
        assert index.search_many(probe) == [
            index.search(key) for key in probe
        ]

    def test_search_many_missing_key_raises(self, scheme):
        index = make(scheme)
        index.insert_many([((1, 1), "a"), ((2, 2), "b")])
        with pytest.raises(KeyNotFoundError):
            index.search_many([(1, 1), (9, 9)])

    def test_delete_many_matches_singles(self, scheme):
        keys = unique(uniform_keys(300, 2, seed=74, domain=65536))
        doomed = shuffled(keys, 8)[:150]
        singles = make(scheme)
        batched = make(scheme)
        pairs = [(key, i) for i, key in enumerate(keys)]
        singles.insert_many(pairs)
        batched.insert_many(pairs)
        removed_singly = [singles.delete(key) for key in doomed]
        removed_batch = batched.delete_many(doomed)
        assert removed_batch == removed_singly  # input order
        assert state_of(batched) == state_of(singles)

    def test_empty_batches(self, scheme):
        index = make(scheme)
        assert index.insert_many([]) == 0
        assert index.search_many([]) == []
        assert index.delete_many([]) == []

    def test_sanitizer_verdict_at_group_boundary(self, scheme):
        keys = unique(uniform_keys(200, 2, seed=75, domain=65536))
        index = make(scheme)
        with sanitized(index) as sanitizer:
            index.insert_many([(key, i) for i, key in enumerate(keys)])
            index.delete_many(keys[:50])
        # The batch executors are single mutators: one check per call,
        # fired at the group-commit boundary.
        assert sanitizer.checks_run == 2

    def test_duplicate_key_batch_applies_zorder_prefix(self, scheme):
        keys = unique(uniform_keys(120, 2, seed=76, domain=65536))
        index = make(scheme)
        index.insert_many([(key, "old") for key in keys[:60]])
        fresh = keys[60:]
        poisoned = [(key, "new") for key in fresh] + [(keys[0], "dup")]
        with pytest.raises(DuplicateKeyError):
            index.insert_many(poisoned)
        # Documented partial-failure semantics: the z-order prefix
        # strictly before the failing key is applied, the suffix is not.
        order = zsorted(fresh + [keys[0]])
        cut = order.index(keys[0])
        applied = {tuple(k) for k in order[:cut]}
        for key in fresh:
            present = key in index
            assert present == (tuple(key) in applied)
        index.check_invariants()

    def test_batched_strictly_fewer_logical_reads(self, scheme):
        base = unique(uniform_keys(900, 2, seed=77, domain=65536))
        build, batch = base[:800], zsorted(base[800:864])
        assert len(batch) == 64
        singles = make(scheme)
        batched = make(scheme)
        for index in (singles, batched):
            for i, key in enumerate(build):
                index.insert(key, i)
        s0 = singles.store.stats.snapshot()
        for key in batch:
            singles.insert(key, "x")
        single_reads = singles.store.stats.delta(s0).reads
        b0 = batched.store.stats.snapshot()
        batched.insert_many([(key, "x") for key in batch])
        batch_reads = batched.store.stats.delta(b0).reads
        assert batch_reads < single_reads
        assert state_of(singles) == state_of(batched)


class TestGroupCommitWAL:
    def test_insert_many_is_one_commit(self, tmp_path):
        store = PageStore(WALBackend(str(tmp_path / "pages.db")))
        index = make(BMEHTree, store=store)
        keys = unique(uniform_keys(200, 2, seed=81, domain=65536))
        before = store.backend.checkpoints
        index.insert_many([(key, i) for i, key in enumerate(keys)])
        assert store.backend.checkpoints == before + 1
        store.close()

    def test_batch_is_durable_and_recoverable(self, tmp_path):
        path = str(tmp_path / "pages.db")
        store = PageStore(WALBackend(path))
        index = make(BMEHTree, store=store)
        keys = unique(uniform_keys(300, 2, seed=82, domain=65536))
        index.insert_many([(key, i) for i, key in enumerate(keys)])
        store.close()
        back = recover_index(path)
        check_structure(back)
        assert len(back) == len(keys)
        for i, key in enumerate(keys):
            assert back.search(key) == i
        back.store.close()

    def test_failed_batch_rolls_back_to_previous_commit(self, tmp_path):
        """A batch that dies mid-flight leaves nothing durable: the WAL
        tail has no COMMIT, so recovery lands on the prior commit point
        — here, the state of the first (successful) batch."""
        path = str(tmp_path / "pages.db")
        store = PageStore(WALBackend(path))
        index = make(BMEHTree, store=store)
        keys = unique(uniform_keys(200, 2, seed=83, domain=65536))
        committed = keys[:100]
        index.insert_many([(key, i) for i, key in enumerate(committed)])
        poisoned = [(key, "v") for key in keys[100:]]
        poisoned.insert(len(poisoned) // 2, (committed[0], "dup"))
        with pytest.raises(DuplicateKeyError):
            index.insert_many(poisoned)
        # Reopen from disk as a crashed process would: the aborted
        # group's records were never flushed, let alone committed.
        back = recover_index(path)
        check_structure(back)
        assert len(back) == len(committed)
        for i, key in enumerate(committed):
            assert back.search(key) == i
        back.store.close()


class TestNilFillResume:
    def test_nil_fill_insert_reads_each_page_once(self, tmp_path):
        """Inserting into a pruned (NIL) region must resume from the
        recorded leaf step, not re-descend from the root: on a plain
        file backend every charged read then maps to exactly one
        physical read, plus the single uncharged load of the pinned
        root — a root re-descent would re-load the whole spine."""
        store = PageStore(
            FileBackend(str(tmp_path / "pages.db"), page_size=8192)
        )
        index = BMEHTree(dims=2, page_capacity=2, widths=8, store=store)
        keys = unique(normal_keys(900, 2, seed=33, domain=256))
        for i, key in enumerate(keys):
            index.insert(key, i)
        for key in keys[:700]:
            index.delete(key)

        counts = {"fill": 0, "grow": 0, "split": 0}

        def counting(name, original):
            def wrapper(*args, **kwargs):
                counts[name] += 1
                return original(*args, **kwargs)

            return wrapper

        index._fill_nil_region = counting(
            "fill", index._fill_nil_region
        )
        index._grow_directory = counting(
            "grow", index._grow_directory
        )
        index._split_and_refine = counting(
            "split", index._split_and_refine
        )
        verified = 0
        for key in keys[:700]:
            before = dict(counts)
            logical = store.stats.snapshot()
            physical = store.backend_stats.snapshot()
            index.insert(key, "back")
            if (
                counts["fill"] > before["fill"]
                and counts["grow"] == before["grow"]
                and counts["split"] == before["split"]
            ):
                # A NIL-fill insert without directory growth: the resume
                # path makes the physical ledger equal the logical one
                # plus the single uncharged pinned-root load.
                dl = store.stats.delta(logical)
                dp = store.backend_stats.delta(physical)
                assert dp.reads == dl.reads + 1, (
                    f"NIL-fill insert of {key} re-read pages: "
                    f"{dp.reads} physical vs {dl.reads} logical"
                )
                verified += 1
        assert counts["fill"] > 0
        assert verified > 0
        index.check_invariants()
        store.close()


@pytest.mark.parametrize("scheme", SCHEMES)
class TestParallelScan:
    BOXES = [
        ((0, 0), (65535, 65535)),
        ((1000, 2000), (30000, 40000)),
        ((40000, 100), (40000, 65000)),
        ((60000, 60000), (1000, 1000)),  # empty (lo > hi)
    ]

    def build(self, scheme, n=600, seed=91):
        index = make(scheme)
        keys = unique(uniform_keys(n, 2, seed=seed, domain=65536))
        index.insert_many([(key, i) for i, key in enumerate(keys)])
        return index

    def test_matches_serial(self, scheme):
        index = self.build(scheme)
        for lows, highs in self.BOXES:
            serial = (
                []
                if any(l > h for l, h in zip(lows, highs))
                else list(index.range_search(lows, highs))
            )
            for parallelism in (1, 2, 4, 9):
                assert scan_parallel(
                    index, lows, highs, parallelism
                ) == serial

    def test_logical_reads_equal_serial(self, scheme):
        index = self.build(scheme)
        store = index.store
        lows, highs = (1000, 2000), (30000, 40000)
        s0 = store.stats.snapshot()
        serial = list(index.range_search(lows, highs))
        serial_reads = store.stats.delta(s0).reads
        p0 = store.stats.snapshot()
        parallel = scan_parallel(index, lows, highs, 4)
        parallel_reads = store.stats.delta(p0).reads
        assert parallel == serial
        assert parallel_reads == serial_reads

    def test_rangequery_run_parallel(self, scheme):
        index = self.build(scheme)
        query = RangeQuery.box(
            index.widths, {0: (1000, 30000), 1: (None, 40000)}
        )
        assert list(query.run(index, parallelism=4)) == list(
            query.run(index)
        )

    def test_parallelism_validated(self, scheme):
        index = self.build(scheme, n=50)
        with pytest.raises(ValueError):
            scan_parallel(index, (0, 0), (100, 100), 0)

    def test_structure_untouched_by_parallel_scan(self, scheme):
        index = self.build(scheme)
        before = state_of(index)
        scan_parallel(index, (0, 0), (65535, 65535), 8)
        assert state_of(index) == before
        check_structure(index)


class TestReadWriteLatch:
    def test_readers_share(self):
        latch = ReadWriteLatch()
        entered = threading.Event()
        release = threading.Event()

        def reader():
            with latch.read():
                entered.set()
                release.wait(5)

        worker = threading.Thread(target=reader)
        worker.start()
        assert entered.wait(5)
        # A second reader enters while the first still holds the latch.
        with latch.read():
            assert latch.active_readers == 2
        release.set()
        worker.join(5)
        assert latch.active_readers == 0

    def test_writer_excludes_readers(self):
        latch = ReadWriteLatch()
        order = []
        in_write = threading.Event()
        release = threading.Event()

        def writer():
            with latch.write():
                in_write.set()
                release.wait(5)
                order.append("write-done")

        worker = threading.Thread(target=writer)
        worker.start()
        assert in_write.wait(5)

        def reader():
            with latch.read():
                order.append("read")

        blocked = threading.Thread(target=reader)
        blocked.start()
        blocked.join(0.05)
        assert blocked.is_alive()  # reader waits for the writer
        release.set()
        worker.join(5)
        blocked.join(5)
        assert order == ["write-done", "read"]

    def test_flush_waits_for_shared_readers(self, tmp_path):
        """The store's flush (exclusive side) cannot interleave with an
        in-flight ``read_shared`` (shared side)."""
        store = PageStore(
            FileBackend(str(tmp_path / "pages.db"), page_size=8192)
        )
        index = make(BMEHTree, store=store)
        index.insert_many(
            [(key, i) for i, key in enumerate(
                unique(uniform_keys(100, 2, seed=95, domain=65536))
            )]
        )
        results = scan_parallel(index, (0, 0), (65535, 65535), 4)
        assert len(results) == len(index)
        store.flush()  # exclusive side acquires cleanly after the scan
        store.close()
