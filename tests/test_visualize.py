"""Partition rendering (ASCII + SVG)."""

import pytest

from repro import BMEHTree, MDEH
from repro.analysis.visualize import ascii_partition, svg_partition
from repro.workloads import table1
from repro.workloads.generators import uniform_keys, unique


@pytest.fixture()
def table1_tree():
    index = BMEHTree(
        2,
        table1.TABLE1_PAGE_CAPACITY,
        widths=table1.TABLE1_WIDTHS,
        xi=table1.TABLE1_XI,
        node_policy="per_dim",
    )
    for codes in table1.table1_codes():
        index.insert(codes)
    return index


class TestAsciiPartition:
    def test_renders_figure5(self, table1_tree):
        art = ascii_partition(table1_tree, mark=table1.table1_codes())
        assert "*" in art
        lines = art.splitlines()
        assert len(lines) == 1 + 16  # header + one row per k1 value
        # Every page gets a distinct letter.
        letters = {c for line in lines[1:] for c in line if c.isalpha()}
        # row labels contribute no alphabetic characters (binary), so
        # letters == page labels.
        assert len(letters) == table1_tree.data_page_count

    def test_requires_two_dimensions(self):
        index = MDEH(3, 2, widths=3)
        with pytest.raises(ValueError):
            ascii_partition(index)

    def test_domain_size_capped(self):
        index = MDEH(2, 2, widths=16)
        with pytest.raises(ValueError):
            ascii_partition(index)

    def test_nil_regions_drawn_as_dots(self):
        index = BMEHTree(2, 2, widths=(3, 3))
        index.insert((0, 0))
        index.insert((0, 1))
        index.insert((0, 2))  # forces a split; some halves may be NIL
        art = ascii_partition(index)
        assert set(art) & set("abcdefghijklmnopqrstuvwxyz.")


class TestSvgPartition:
    def test_writes_rectangles(self, table1_tree, tmp_path):
        path = str(tmp_path / "fig5.svg")
        count = svg_partition(table1_tree, path)
        text = open(path).read()
        assert text.startswith("<svg")
        assert text.count("<rect") == count + 1  # + background
        regions = sum(1 for _ in table1_tree.leaf_regions())
        assert count == regions

    def test_projection_axes_checked(self, table1_tree, tmp_path):
        with pytest.raises(ValueError):
            svg_partition(table1_tree, str(tmp_path / "x.svg"), axes=(0, 0))
        with pytest.raises(ValueError):
            svg_partition(table1_tree, str(tmp_path / "x.svg"), axes=(0, 5))

    def test_three_dimensional_projection(self, tmp_path):
        index = BMEHTree(3, 4, widths=6)
        for key in unique(uniform_keys(200, 3, seed=190, domain=64)):
            index.insert(key)
        count = svg_partition(index, str(tmp_path / "proj.svg"), axes=(0, 2))
        assert count == sum(1 for _ in index.leaf_regions())
