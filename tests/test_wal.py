"""Unit tests for the write-ahead log backend and its recovery protocol."""

import os

import pytest

from repro.errors import SerializationError, StorageError
from repro.sanitize import check_structure
from repro.storage import (
    DataPage,
    PageStore,
    WALBackend,
    checkpoint,
    recover_index,
)
from repro.core import BMEHTree
from repro.storage.wal import _OP_STORE, _REC_CRC, _REC_HEAD


def page(*records):
    p = DataPage(capacity=max(4, len(records)))
    for key, value in records:
        p.put(key, value)
    return p


def records_of(backend, pid):
    return dict(backend.load(pid).items())


class TestWALBasics:
    def test_round_trip_through_close(self, tmp_path):
        path = str(tmp_path / "pages.db")
        backend = WALBackend(path)
        backend.store(0, page(((1, 2), "a")))
        backend.store(1, page(((3, 4), "b")))
        backend.flush()
        backend.close()
        back = WALBackend(path)
        assert records_of(back, 0) == {(1, 2): "a"}
        assert records_of(back, 1) == {(3, 4): "b"}
        assert list(back.page_ids()) == [0, 1]
        back.close()

    def test_uncommitted_reads_come_from_overlay(self, tmp_path):
        backend = WALBackend(str(tmp_path / "pages.db"))
        backend.store(5, page(((9, 9), "x")))
        assert 5 in backend
        assert records_of(backend, 5) == {(9, 9): "x"}
        # The page file underneath has not been touched yet.
        assert 5 not in backend.inner
        backend.flush()
        assert 5 in backend.inner
        backend.close()

    def test_load_returns_fresh_objects(self, tmp_path):
        """Mutating a loaded object must not leak into the overlay —
        byte-backend semantics."""
        backend = WALBackend(str(tmp_path / "pages.db"))
        backend.store(0, page(((1, 1), "v")))
        loaded = backend.load(0)
        loaded.put((2, 2), "w")
        assert records_of(backend, 0) == {(1, 1): "v"}
        backend.close()

    def test_discard_tombstones_until_checkpoint(self, tmp_path):
        backend = WALBackend(str(tmp_path / "pages.db"))
        backend.store(0, page(((1, 1), "v")))
        backend.flush()
        backend.discard(0)
        assert 0 not in backend
        assert 0 in backend.inner  # still live underneath until commit
        with pytest.raises(StorageError):
            backend.load(0)
        backend.flush()
        assert 0 not in backend.inner
        backend.close()

    def test_discard_of_unknown_page_rejected(self, tmp_path):
        backend = WALBackend(str(tmp_path / "pages.db"))
        with pytest.raises(StorageError):
            backend.discard(7)
        backend.close()

    def test_oversized_image_rejected_at_store_time(self, tmp_path):
        backend = WALBackend(str(tmp_path / "pages.db"), page_size=128)
        big = DataPage(capacity=64)
        for i in range(40):
            big.put((i, i), "x" * 20)
        with pytest.raises(SerializationError):
            backend.store(0, big)
        backend.close()

    def test_auto_checkpoint_every_n_ops(self, tmp_path):
        backend = WALBackend(str(tmp_path / "pages.db"), checkpoint_every=3)
        for pid in range(7):
            backend.store(pid, page(((pid, pid), "v")))
        assert backend.checkpoints == 2
        assert backend.pending_store_ids() == {6}
        backend.close()

    def test_checkpoint_every_validated(self, tmp_path):
        with pytest.raises(StorageError):
            WALBackend(str(tmp_path / "pages.db"), checkpoint_every=0)


class TestWALRecovery:
    def test_uncommitted_tail_discarded(self, tmp_path):
        """Stores never followed by a commit must vanish on reopen."""
        path = str(tmp_path / "pages.db")
        backend = WALBackend(path)
        backend.store(0, page(((1, 1), "committed")))
        backend.flush()
        orphan = backend.inner.registry.encode(page(((2, 2), "orphan")))
        backend.close()
        # A crash right after an append leaves a valid record with no
        # commit behind it: exactly this file state.
        with open(path + ".wal", "ab") as f:
            f.write(WALBackend._record(_OP_STORE, 1, orphan))
        back = WALBackend(path)
        assert list(back.page_ids()) == [0]
        assert back.discarded_tail_ops == 1
        back.close()

    def test_torn_slot_repaired_from_wal(self, tmp_path):
        """A crash during the apply phase of a checkpoint — COMMIT
        durable, CHECKPOINT marker not — leaves a torn page-file slot
        that recovery must heal from the committed image."""
        path = str(tmp_path / "pages.db")
        backend = WALBackend(path, page_size=512)
        backend.store(0, page(((1, 1), "good")))
        backend.flush()
        backend.close()
        # Drop the trailing CHECKPOINT marker: the WAL now reads as a
        # commit whose apply never finished.
        ckpt_size = _REC_HEAD.size + _REC_CRC.size
        wal_size = os.path.getsize(path + ".wal")
        with open(path + ".wal", "r+b") as f:
            f.truncate(wal_size - ckpt_size)
        # Tear the slot the apply was writing.
        with open(path, "r+b") as f:
            f.seek(8 + 50)  # inside slot 0's image
            f.write(b"\xff" * 64)
        back = WALBackend(path, page_size=512)
        assert back.replayed_ops == 1
        assert records_of(back, 0) == {(1, 1): "good"}
        back.close()

    def test_garbage_wal_tail_ignored(self, tmp_path):
        path = str(tmp_path / "pages.db")
        backend = WALBackend(path)
        backend.store(0, page(((1, 1), "v")))
        backend.flush()
        backend.close()
        with open(path + ".wal", "ab") as f:
            f.write(b"\x07garbage-that-is-not-a-record")
        back = WALBackend(path)
        assert records_of(back, 0) == {(1, 1): "v"}
        back.close()

    def test_wrong_magic_rejected(self, tmp_path):
        path = str(tmp_path / "pages.db")
        WALBackend(path).close()
        with open(path + ".wal", "r+b") as f:
            f.write(b"NOTAWAL!")
        with pytest.raises(StorageError):
            WALBackend(path)

    def test_replay_is_idempotent(self, tmp_path):
        """Recovering twice (crash during recovery's apply phase) is safe."""
        path = str(tmp_path / "pages.db")
        backend = WALBackend(path)
        backend.store(0, page(((1, 1), "v")))
        backend.store(1, page(((2, 2), "w")))
        backend.discard(0)
        backend.flush()
        backend.close()
        wal_bytes = open(path + ".wal", "rb").read()
        for _ in range(2):  # re-present the same WAL twice
            with open(path + ".wal", "wb") as f:
                f.write(wal_bytes)
            back = WALBackend(path)
            assert list(back.page_ids()) == [1]
            back.close()


class TestWALCoherence:
    def test_sanitizer_accepts_live_wal_tree(self, tmp_path):
        store = PageStore(WALBackend(str(tmp_path / "t.db"), page_size=8192))
        tree = BMEHTree(dims=2, page_capacity=4, widths=16, store=store)
        for i in range(150):
            tree.insert((i * 7919 % 65536, i * 104729 % 65536), i)
        check_structure(tree)  # mid-transaction: overlay has pending ops
        checkpoint(tree)
        check_structure(tree)  # post-checkpoint: overlay empty
        store.close()

    def test_page_ids_patched_by_overlay(self, tmp_path):
        backend = WALBackend(str(tmp_path / "pages.db"))
        backend.store(0, page(((1, 1), "a")))
        backend.store(1, page(((2, 2), "b")))
        backend.flush()
        backend.discard(0)
        backend.store(2, page(((3, 3), "c")))
        assert list(backend.page_ids()) == [1, 2]
        assert backend.pending_store_ids() == {2}
        assert backend.pending_discard_ids() == {0}
        backend.close()


class TestIndexCheckpointRecover:
    def test_checkpoint_then_recover(self, tmp_path):
        path = str(tmp_path / "tree.db")
        store = PageStore(WALBackend(path, page_size=8192))
        tree = BMEHTree(dims=2, page_capacity=4, widths=16, store=store)
        keys = [(i * 7919 % 65536, i * 104729 % 65536) for i in range(300)]
        for i, key in enumerate(keys):
            tree.insert(key, i)
        checkpoint(tree)
        store.backend.close()
        back = recover_index(path, page_size=8192)
        assert len(back) == len(keys)
        for i, key in enumerate(keys):
            assert back.search(key) == i
        check_structure(back)

    def test_recovered_index_keeps_working(self, tmp_path):
        path = str(tmp_path / "tree.db")
        store = PageStore(WALBackend(path, page_size=8192))
        tree = BMEHTree(dims=2, page_capacity=4, widths=16, store=store)
        for i in range(100):
            tree.insert((i * 31 % 4096, i * 97 % 4096), i)
        checkpoint(tree)
        store.backend.close()
        back = recover_index(path, page_size=8192)
        for i in range(100, 200):
            back.insert((i * 31 % 4096, i * 97 % 4096), i)
        assert len(back) == 200
        check_structure(back)
        checkpoint(back)
        back.store.backend.close()
        again = recover_index(path, page_size=8192)
        assert len(again) == 200
        check_structure(again)

    def test_recover_without_any_checkpoint_returns_none(self, tmp_path):
        path = str(tmp_path / "tree.db")
        backend = WALBackend(path)
        backend.store(0, page(((1, 1), "v")))  # never committed
        del backend  # no close(): nothing reaches the WAL durably
        assert recover_index(path) is None

    def test_checkpoint_requires_wal_backend(self):
        tree = BMEHTree(dims=2, page_capacity=4, widths=8)
        tree.insert((1, 2), "v")
        with pytest.raises(StorageError):
            checkpoint(tree)

    def test_wal_file_created_next_to_page_file(self, tmp_path):
        path = str(tmp_path / "pages.db")
        WALBackend(path).close()
        assert os.path.exists(path + ".wal")


class TestGroupCommit:
    """The group-commit protocol: flushes inside a group defer to one
    COMMIT record and one durability flush at the outermost end_group."""

    def test_flush_deferred_inside_group(self, tmp_path):
        backend = WALBackend(str(tmp_path / "pages.db"))
        backend.begin_group()
        backend.store(0, page(((1, 1), "a")))
        backend.flush()  # repro: allow[REP303] — deferral is the test
        assert backend.in_group
        assert 0 not in backend.inner
        backend.end_group()
        assert not backend.in_group
        assert 0 in backend.inner
        backend.close()

    def test_one_commit_per_group(self, tmp_path):
        backend = WALBackend(str(tmp_path / "pages.db"))
        before = backend.checkpoints
        backend.begin_group()
        for pid in range(8):
            backend.store(pid, page(((pid, pid), "v")))
            backend.flush()  # repro: allow[REP303] — op-at-a-time pattern
        backend.end_group()
        assert backend.checkpoints == before + 1
        backend.close()

    def test_nested_groups_commit_at_outermost(self, tmp_path):
        backend = WALBackend(str(tmp_path / "pages.db"))
        before = backend.checkpoints
        backend.begin_group()
        backend.begin_group()
        backend.store(0, page(((1, 1), "a")))
        backend.end_group()  # inner: still inside the outer group
        assert backend.checkpoints == before
        assert 0 not in backend.inner
        backend.end_group()
        assert backend.checkpoints == before + 1
        backend.close()

    def test_end_group_without_begin_rejected(self, tmp_path):
        backend = WALBackend(str(tmp_path / "pages.db"))
        with pytest.raises(StorageError):
            backend.end_group()
        backend.close()

    def test_aborted_group_commits_nothing(self, tmp_path):
        backend = WALBackend(str(tmp_path / "pages.db"))
        before = backend.checkpoints
        backend.begin_group()
        backend.store(0, page(((1, 1), "a")))
        backend.flush()  # repro: allow[REP303] — aborted-group coverage
        backend.end_group(commit=False)
        assert backend.checkpoints == before
        assert 0 not in backend.inner

    def test_empty_group_writes_no_commit_record(self, tmp_path):
        backend = WALBackend(str(tmp_path / "pages.db"))
        before = backend.checkpoints
        size = os.path.getsize(str(tmp_path / "pages.db") + ".wal")
        backend.begin_group()
        backend.end_group()
        assert backend.checkpoints == before
        assert os.path.getsize(
            str(tmp_path / "pages.db") + ".wal"
        ) == size
        backend.close()

    def test_metadata_provider_invoked_at_commit_time(self, tmp_path):
        calls = []

        def provider():
            calls.append(len(calls))
            return b"blob-at-commit"

        backend = WALBackend(str(tmp_path / "pages.db"))
        backend.begin_group()
        backend.store(0, page(((1, 1), "a")))
        assert calls == []  # not yet: the blob must see the final state
        backend.end_group(metadata=provider)
        assert calls == [0]
        backend.close()
        back = WALBackend(str(tmp_path / "pages.db"))
        assert back.metadata == b"blob-at-commit"
        back.close()

    def test_metadata_provider_skipped_for_empty_group(self, tmp_path):
        backend = WALBackend(str(tmp_path / "pages.db"))
        calls = []
        backend.begin_group()
        backend.end_group(metadata=lambda: calls.append(1) or b"x")
        assert calls == []
        backend.close()

    def test_store_group_is_one_commit(self, tmp_path):
        store = PageStore(WALBackend(str(tmp_path / "pages.db")))
        before = store.backend.checkpoints
        with store.group():
            for pid in range(4):
                store.allocate(page(((pid, pid), "v")))
                store.flush()  # per-op durability requests, all deferred
        assert store.backend.checkpoints == before + 1
        for pid in range(4):
            assert pid in store.backend.inner
        store.close()

    def test_store_group_aborts_on_exception(self, tmp_path):
        store = PageStore(WALBackend(str(tmp_path / "pages.db")))
        before = store.backend.checkpoints
        with pytest.raises(RuntimeError):
            with store.group():
                store.allocate(page(((1, 1), "a")))
                raise RuntimeError("batch dies")
        assert store.backend.checkpoints == before
        assert not store.backend.in_group  # the scope was unwound
        assert 0 not in store.backend.inner

    def test_store_group_noop_without_wal(self):
        store = PageStore()  # memory backend: no group protocol
        with store.group():
            store.allocate(page(((1, 1), "a")))
        assert store.read(0) is not None


class TestAppendZeroCopy:
    def test_memoryview_payload_appends_without_copies(self, tmp_path):
        """The append path CRCs and writes a memoryview payload in place:
        after the scratch buffer is warm, no intermediate bytes object
        anywhere near the payload size may be allocated per record."""
        import tracemalloc

        backend = WALBackend(str(tmp_path / "pages.db"))
        payload = bytes(range(256)) * 128  # 32 KiB
        view = memoryview(payload)
        backend._append(_OP_STORE, 0, view)  # warm the scratch buffer

        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot()
            for _ in range(8):
                backend._append(_OP_STORE, 0, view)
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        big = [
            stat
            for stat in after.compare_to(before, "lineno")
            if stat.size_diff >= len(payload) // 2
        ]
        assert big == [], [str(stat) for stat in big]
        backend.close()

    def test_memoryview_payload_record_is_valid(self, tmp_path):
        """bytes and memoryview payloads must produce identical records
        (same CRC stream), so recovery replays either."""
        payload = b"\x01\x02" * 100
        assert WALBackend._record(_OP_STORE, 7, payload) == WALBackend._record(
            _OP_STORE, 7, memoryview(payload)
        )


class TestReplicationTapAndFloor:
    """The WAL-shipping surface: taps see committed batches only, in
    commit order; compaction respects the floors live tails hold."""

    def test_tap_sees_committed_batches_in_commit_order(self, tmp_path):
        backend = WALBackend(str(tmp_path / "pages.db"))
        tap = backend.attach_tap()
        backend.store(0, page(((1, 1), "a")))
        # Uncommitted: nothing published until the durability flush.
        assert tap.drain() == []
        backend.flush()
        backend.store(0, page(((1, 1), "a"), ((2, 2), "b")))
        backend.store(1, page(((3, 3), "c")))
        backend.flush()
        batches = tap.drain()
        assert [b["lsn"] for b in batches] == [1, 2]
        ops = batches[1]["ops"]
        assert [op[0] for op in ops] == ["store", "store"]
        assert [op[1] for op in ops] == [0, 1]
        backend.detach_tap(tap.tap_id)
        backend.close()

    def test_tap_batches_replay_to_identical_state(self, tmp_path):
        primary = WALBackend(str(tmp_path / "primary.pages"))
        follower = WALBackend(str(tmp_path / "follower.pages"))
        tap = primary.attach_tap()
        primary.store(0, page(((1, 1), "a")))
        primary.flush()
        primary.store(1, page(((2, 2), "b")))
        primary.discard(0)
        primary.flush()
        for batch in tap.drain():
            follower.apply_replicated(batch["ops"], batch["meta"])
        assert list(follower.page_ids()) == list(primary.page_ids())
        for pid in primary.page_ids():
            assert records_of(follower, pid) == records_of(primary, pid)
        primary.close()
        follower.close()

    def test_tap_overflow_latches_and_drops_backlog(
        self, tmp_path, monkeypatch
    ):
        from repro.storage.wal import ReplicationTap

        monkeypatch.setattr(ReplicationTap, "LIMIT", 3)
        backend = WALBackend(str(tmp_path / "pages.db"))
        tap = backend.attach_tap()
        for i in range(5):
            backend.store(0, page(((i, i), "v")))
            backend.flush()
        assert tap.overflowed
        # The backlog is gone — a follower must re-bootstrap, not limp
        # along with a hole in its history.
        assert tap.drain() == []
        backend.close()

    def test_attach_holds_floor_detach_releases(self, tmp_path):
        backend = WALBackend(str(tmp_path / "pages.db"))
        assert backend.floors_held == 0
        tap = backend.attach_tap()
        assert backend.floors_held == 1
        with pytest.raises(StorageError, match="floor"):
            backend.compact()
        backend.detach_tap(tap.tap_id)
        assert backend.floors_held == 0
        backend.store(0, page(((1, 1), "a")))
        backend.compact()
        assert records_of(backend, 0) == {(1, 1): "a"}
        backend.close()

    def test_seeded_interleaving_floor_vs_compact(self, tmp_path):
        """A seeded schedule of commits, floor acquire/release and
        compaction attempts: compact() must succeed exactly when no
        floor is held, refuse otherwise, and the surviving state must
        always equal the model."""
        import random

        rng = random.Random(0xF100D)
        backend = WALBackend(str(tmp_path / "pages.db"))
        model: dict[int, str] = {}
        floors: list[int] = []
        compacted = refused = 0
        for step in range(120):
            choice = rng.random()
            if choice < 0.5:
                pid = rng.randrange(6)
                value = f"v{step}"
                backend.store(pid, page(((pid, pid), value)))
                backend.flush()
                model[pid] = value
            elif choice < 0.65:
                floors.append(backend.acquire_floor())
            elif choice < 0.8 and floors:
                backend.release_floor(
                    floors.pop(rng.randrange(len(floors)))
                )
            else:
                if floors:
                    with pytest.raises(StorageError, match="floor"):
                        backend.compact()
                    refused += 1
                else:
                    backend.compact()
                    compacted += 1
                assert {
                    pid: records_of(backend, pid)[(pid, pid)]
                    for pid in backend.page_ids()
                } == model
        assert compacted and refused  # the seed exercises both arms
        backend.close()
        survivor = WALBackend(str(tmp_path / "pages.db"))
        assert {
            pid: records_of(survivor, pid)[(pid, pid)]
            for pid in survivor.page_ids()
        } == model
        survivor.close()

    def test_tail_survives_compaction_window(self, tmp_path):
        """The floor exists for this: a tap attached (floor held) keeps
        streaming correctly across an attempted compaction."""
        backend = WALBackend(str(tmp_path / "pages.db"))
        tap = backend.attach_tap()
        backend.store(0, page(((1, 1), "a")))
        backend.flush()
        with pytest.raises(StorageError, match="floor"):
            backend.compact()
        backend.store(1, page(((2, 2), "b")))
        backend.flush()
        assert [b["lsn"] for b in tap.drain()] == [1, 2]
        backend.detach_tap(tap.tap_id)
        backend.close()
