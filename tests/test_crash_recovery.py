"""Chaos suite: kill a WAL-backed index at every injected fault point.

Each scenario builds an index on a :class:`WALBackend` opened through a
:class:`FaultInjector`, checkpointing at fixed operation boundaries
while tracking which key set each checkpoint *attempted* to commit.
The injector crashes the "machine" at a chosen physical operation — in
fail-stop, torn-write, or lying-flush mode — after which the harness
reopens the files with plain ``open`` and requires:

* recovery succeeds (or reports "nothing ever committed" as ``None``);
* the recovered index passes the full structural sanitizer;
* its key set is **exactly** an attempted commit point — every
  committed key searchable with its value, not one uncommitted key
  leaked, no torn in-between state;
* in fail-stop and torn mode, recovery never rolls back behind the
  last checkpoint whose ``checkpoint()`` call returned — a returned
  checkpoint means its COMMIT flush was honoured, so it is durable.

The allowed set includes the checkpoint in flight at the crash: its
COMMIT record may or may not have become durable before the failure
(the commit-uncertainty window every WAL has).  In lying-flush mode any
earlier commit point is allowed too — a disk that drops flushes can
lose checkpoints wholesale; what survives is atomicity, not recency.

Fault points are enumerated densely early (where the WAL bootstrap and
first commits live) and on a stride beyond; set
``REPRO_CHAOS_EXHAUSTIVE=1`` to sweep every physical operation of every
scenario (minutes, not seconds).
"""

import os

import pytest

from repro.core import BMEHTree
from repro.errors import CrashError, ReproError
from repro.sanitize import check_structure
from repro.storage import (
    FaultInjector,
    PageStore,
    WALBackend,
    checkpoint,
    recover_index,
)
from repro.storage.faults import MODES
from repro.storage.snapshot import load_index, save_index

PAGE_SIZE = 8192
EXHAUSTIVE = os.environ.get("REPRO_CHAOS_EXHAUSTIVE") == "1"


def tree_on(path, injector=None, page_capacity=4):
    opener = injector.open if injector else None
    store = PageStore(WALBackend(path, page_size=PAGE_SIZE, opener=opener))
    return BMEHTree(
        dims=2, page_capacity=page_capacity, widths=16, store=store
    )


def spread_keys(n):
    """Well-spread 16-bit key pairs (multiplicative hashing)."""
    return [(i * 7919 % 65536, i * 104729 % 65536) for i in range(n)]


def clustered_keys(n):
    """Keys packed into one corner of the domain, so the hot region's
    pages split over and over — the split storm."""
    return [(i % 64, i // 64) for i in range(n)]


def fault_points(total, dense, stride):
    """Which physical ops to crash at: every early op (WAL bootstrap,
    first commits), then a stride across the rest, then past the end
    (the machine dies after a clean run)."""
    if EXHAUSTIVE:
        return list(range(1, total + 2))
    points = set(range(1, min(dense, total) + 1))
    points.update(range(dense, total + 1, stride))
    points.update((total, total + 1))
    return sorted(points)


class Workload:
    """One scripted build: insert keys, checkpoint every ``stride``
    inserts, remembering each checkpoint's attempted commit key-set."""

    def __init__(self, keys, stride):
        self.keys = keys
        self.stride = stride
        self.attempts = [frozenset()]
        self.completed = frozenset()

    def run(self, path, injector=None):
        self.attempts = [frozenset()]
        self.completed = frozenset()
        tree = tree_on(path, injector)
        committed = frozenset()
        staged = set()
        for i, key in enumerate(self.keys):
            tree.insert(key, i)
            staged.add(key)
            if (i + 1) % self.stride == 0:
                committed = committed | staged
                self.attempts.append(committed)
                checkpoint(tree)
                self.completed = committed
                staged = set()
        committed = committed | staged
        self.attempts.append(committed)
        checkpoint(tree)
        self.completed = committed
        return tree

    def measure_ops(self, path):
        """Total physical ops of a fault-free run (the crash schedule)."""
        probe = FaultInjector()
        self.run(path, probe)
        return probe.ops


class BatchedWorkload(Workload):
    """A build driven through the batch executors: each ``insert_many``
    (and, optionally, each ``delete_many`` wave) is one group commit —
    its own attempted commit point, with no explicit ``checkpoint()``
    calls at all.  A crash inside a batch must recover to a group
    boundary: the previous batch's state, or the in-flight batch if its
    single COMMIT record became durable."""

    def __init__(self, keys, stride, delete_waves=0):
        super().__init__(keys, stride)
        self.delete_waves = delete_waves

    def run(self, path, injector=None):
        self.attempts = [frozenset()]
        self.completed = frozenset()
        tree = tree_on(path, injector)
        committed = frozenset()
        for start in range(0, len(self.keys), self.stride):
            batch = self.keys[start:start + self.stride]
            attempt = committed | frozenset(batch)
            self.attempts.append(attempt)
            tree.insert_many(
                [(key, start + j) for j, key in enumerate(batch)]
            )
            committed = attempt
            self.completed = committed
        for wave in range(self.delete_waves):
            batch = self.keys[wave * self.stride:(wave + 1) * self.stride]
            attempt = committed - frozenset(batch)
            self.attempts.append(attempt)
            tree.delete_many(batch)
            committed = attempt
            self.completed = committed
        return tree


def crash_at(workload, path, mode, fail_after, seed=11):
    """Run the workload under injection; the machine always ends dead."""
    injector = FaultInjector(fail_after=fail_after, mode=mode, seed=seed)
    try:
        workload.run(path, injector)
        if not injector.crashed:
            # fail_after beyond the run, or a lying disk whose grace
            # outlived the workload: the machine still dies eventually.
            injector.crash()
    except CrashError:
        pass


def assert_recovers_to_commit_point(workload, path, mode, fail_after):
    label = f"{mode}@{fail_after}"
    recovered = recover_index(path, page_size=PAGE_SIZE)
    if recovered is None:
        got = frozenset()
    else:
        check_structure(recovered)
        found = set()
        for i, key in enumerate(workload.keys):
            try:
                if recovered.search(key) == i:
                    found.add(key)
            except ReproError:
                pass
        assert len(recovered) == len(found), (
            f"{label}: index reports {len(recovered)} keys but only "
            f"{len(found)} committed keys are searchable with their values"
        )
        got = frozenset(found)
        recovered.store.close()
    matches = [i for i, a in enumerate(workload.attempts) if a == got]
    assert matches, (
        f"{label}: recovered {len(got)} keys — not any attempted commit "
        f"point (sizes {sorted(len(a) for a in workload.attempts)})"
    )
    if mode != "dropped-flush":
        # Recency by attempt *position*, not key count: delete batches
        # make later commit points smaller than earlier ones.
        completed_at = max(
            i for i, a in enumerate(workload.attempts)
            if a == workload.completed
        )
        assert max(matches) >= completed_at, (
            f"{label}: recovery rolled back to commit point "
            f"{max(matches)}, behind the last completed point "
            f"{completed_at} ({len(workload.completed)} keys)"
        )


def sweep(workload, tmp_path, mode, dense, stride):
    total = workload.measure_ops(str(tmp_path / "probe.db"))
    for fail_after in fault_points(total, dense, stride):
        path = str(tmp_path / f"crash-{mode}-{fail_after}.db")
        crash_at(workload, path, mode, fail_after)
        assert_recovers_to_commit_point(workload, path, mode, fail_after)


@pytest.mark.parametrize("mode", MODES)
class TestInsertBuildChaos:
    """The acceptance build: >= 2000 inserts, killed across its whole
    physical-op range, must always recover sanitizer-clean with exactly
    the committed keys."""

    def test_small_build_dense_sweep(self, tmp_path, mode):
        sweep(Workload(spread_keys(300), 25), tmp_path, mode,
              dense=30, stride=61)

    def test_acceptance_build_2000_inserts(self, tmp_path, mode):
        sweep(Workload(spread_keys(2000), 100), tmp_path, mode,
              dense=10, stride=487)


@pytest.mark.parametrize("mode", MODES)
class TestSplitStormChaos:
    """Clustered keys force cascades of page and node splits; a crash
    mid-cascade is the hardest structural case for recovery."""

    def test_split_storm(self, tmp_path, mode):
        sweep(Workload(clustered_keys(600), 50), tmp_path, mode,
              dense=20, stride=167)


@pytest.mark.parametrize("mode", MODES)
class TestGroupCommitChaos:
    """Kill the machine inside ``insert_many`` / ``delete_many`` group
    commits: recovery must land exactly on a group boundary, sanitizer
    clean — a batch is atomic, never half-applied."""

    def test_batched_build(self, tmp_path, mode):
        sweep(BatchedWorkload(spread_keys(600), 64), tmp_path, mode,
              dense=25, stride=101)

    def test_batched_build_and_delete_waves(self, tmp_path, mode):
        sweep(BatchedWorkload(spread_keys(400), 50, delete_waves=3),
              tmp_path, mode, dense=20, stride=83)

    def test_clustered_batches_split_storm(self, tmp_path, mode):
        sweep(BatchedWorkload(clustered_keys(450), 75), tmp_path, mode,
              dense=15, stride=127)


@pytest.mark.parametrize("mode", MODES)
class TestSnapshotSaveChaos:
    """A crash during ``save_index`` must leave either a fully loadable
    snapshot or one that fails with a named error — and must never
    disturb the WAL-backed source index."""

    def test_snapshot_save(self, tmp_path, mode):
        path = str(tmp_path / "source.db")
        keys = spread_keys(400)
        tree = tree_on(path)
        for i, key in enumerate(keys):
            tree.insert(key, i)
        checkpoint(tree)

        probe = FaultInjector()
        save_index(tree, str(tmp_path / "probe.snap"), opener=probe.open)
        for fail_after in fault_points(probe.ops, dense=10, stride=37):
            snap = str(tmp_path / f"crash-{fail_after}.snap")
            injector = FaultInjector(
                fail_after=fail_after, mode=mode, seed=11
            )
            try:
                save_index(tree, snap, opener=injector.open)
                if not injector.crashed:
                    injector.crash()
            except CrashError:
                pass
            try:
                back = load_index(snap)
            except ReproError:
                pass  # a named, catchable failure — never silent garbage
            else:
                assert len(back) == len(keys)
                check_structure(back)

        tree.store.close()
        back = recover_index(path, page_size=PAGE_SIZE)
        assert len(back) == len(keys)
        check_structure(back)
        back.store.close()
