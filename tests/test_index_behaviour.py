"""Black-box behaviour common to every index scheme."""

import pytest

from repro.errors import (
    DuplicateKeyError,
    KeyDimensionError,
    KeyNotFoundError,
)
from tests.conftest import make_index


class TestBasicOperations:
    def test_fresh_index_is_empty(self, scheme):
        cls, options = scheme
        index = make_index(cls, options)
        assert len(index) == 0
        assert index.data_page_count == 0
        assert index.load_factor == 0.0
        index.check_invariants()

    def test_insert_search_roundtrip(self, built, small_keys):
        index, model = built
        for key, value in model.items():
            assert index.search(key) == value

    def test_len_tracks_inserts(self, built):
        index, model = built
        assert len(index) == len(model)

    def test_contains(self, built):
        index, model = built
        key = next(iter(model))
        assert key in index
        assert (255, 254) not in model or True
        missing = next(
            k for k in ((x, y) for x in range(256) for y in range(256))
            if k not in model
        )
        assert missing not in index

    def test_search_missing_raises(self, scheme):
        cls, options = scheme
        index = make_index(cls, options)
        with pytest.raises(KeyNotFoundError):
            index.search((1, 2))

    def test_duplicate_insert_rejected(self, built):
        index, model = built
        key = next(iter(model))
        with pytest.raises(DuplicateKeyError):
            index.insert(key, "again")
        # Original value untouched, structure still sound.
        assert index.search(key) == model[key]
        index.check_invariants()

    def test_none_values_allowed(self, scheme):
        cls, options = scheme
        index = make_index(cls, options)
        index.insert((1, 2))
        assert index.search((1, 2)) is None

    def test_items_yields_everything(self, built):
        index, model = built
        got = dict(index.items())
        assert got == model

    def test_invariants_after_build(self, built):
        index, _ = built
        index.check_invariants()

    def test_load_factor_in_meaningful_band(self, built):
        index, _ = built
        # ~ln 2 for random keys; generous band for a 300-key build.
        assert 0.4 <= index.load_factor <= 1.0

    def test_page_capacity_respected(self, built):
        index, _ = built
        for region in index.leaf_regions():
            if region.page is not None:
                assert len(index.store.peek(region.page)) <= index.page_capacity


class TestKeyValidation:
    def test_wrong_arity(self, scheme):
        cls, options = scheme
        index = make_index(cls, options)
        with pytest.raises(KeyDimensionError):
            index.insert((1,))
        with pytest.raises(KeyDimensionError):
            index.search((1, 2, 3))

    def test_out_of_domain_component(self, scheme):
        cls, options = scheme
        index = make_index(cls, options, widths=8)
        with pytest.raises(KeyDimensionError):
            index.insert((256, 0))
        with pytest.raises(KeyDimensionError):
            index.insert((0, -1))

    def test_non_int_component(self, scheme):
        cls, options = scheme
        index = make_index(cls, options)
        with pytest.raises(KeyDimensionError):
            index.insert(("a", 0))
        with pytest.raises(KeyDimensionError):
            index.insert((True, 0))

    def test_constructor_validation(self, scheme):
        cls, options = scheme
        with pytest.raises(KeyDimensionError):
            cls(dims=0, page_capacity=4, **options)
        with pytest.raises(ValueError):
            cls(dims=2, page_capacity=0, **options)
        with pytest.raises(ValueError):
            cls(dims=2, page_capacity=4, widths=(8, 128), **options)
        with pytest.raises(KeyDimensionError):
            cls(dims=2, page_capacity=4, widths=(8,), **options)


class TestSearchCostAccounting:
    def test_search_costs_are_bounded_and_pure_reads(self, built):
        index, model = built
        stats = index.store.stats
        key = next(iter(model))
        before = stats.snapshot()
        index.search(key)
        delta = stats.delta(before)
        assert delta.writes == 0
        assert 1 <= delta.reads <= 6

    def test_mixed_width_keys(self, scheme):
        cls, options = scheme
        index = make_index(cls, options, widths=(4, 10))
        keys = [(a, b) for a in range(16) for b in (0, 3, 700, 1023)]
        for i, key in enumerate(keys):
            index.insert(key, i)
        index.check_invariants()
        for i, key in enumerate(keys):
            assert index.search(key) == i
