"""Structural tests specific to the grid-file baseline."""

import pytest

from repro import GridFile
from repro.analysis import assert_exact_tiling
from repro.workloads import normal_keys, uniform_keys, unique


def build(keys, b=4, widths=8):
    index = GridFile(2, b, widths=widths)
    for i, key in enumerate(keys):
        index.insert(key, i)
    return index


class TestScales:
    def test_fresh_file_is_one_block(self):
        g = GridFile(2, 4, widths=8)
        assert g.grid_shape == (1, 1)
        assert g.directory_size == 1
        assert g.scales == ((), ())

    def test_scales_are_dyadic_midpoints(self):
        g = build(unique(uniform_keys(300, 2, seed=120, domain=256)))
        for dim, scale in enumerate(g.scales):
            for boundary in scale:
                # Every boundary is a dyadic point: value * 2^k form.
                assert boundary > 0
                low_zeros = (boundary & -boundary).bit_length() - 1
                assert boundary % (1 << low_zeros) == 0

    def test_directory_is_scale_product(self):
        g = build(unique(uniform_keys(400, 2, seed=121, domain=256)))
        s1, s2 = g.grid_shape
        assert g.directory_size == s1 * s2
        assert s1 == len(g.scales[0]) + 1
        assert s2 == len(g.scales[1]) + 1

    def test_scales_refine_only_where_data_is(self):
        """Keys confined to one quadrant: beyond the coarse cuts that
        carve the quadrant out (128, 64), every boundary refines inside
        the populated area."""
        keys = [(x, y) for x in range(0, 64, 2) for y in range(0, 64, 5)]
        g = build(keys, b=4)
        for dim in range(2):
            deep = [b for b in g.scales[dim] if b > 64]
            assert deep in ([], [128]), deep


class TestProductWeakness:
    def test_skew_inflates_the_product(self):
        """One dense corner refines whole hyperplanes: the directory
        grows superlinearly under skew — the paper's §1 critique."""
        skewed = unique(normal_keys(600, 2, seed=122, domain=256))
        flat = unique(uniform_keys(600, 2, seed=122, domain=256))
        dense = build(skewed, b=2)
        sparse = build(flat, b=2)
        # Equal page budgets, but the skewed grid needs a directory that
        # is large relative to its page count.
        assert dense.directory_size / dense.data_page_count >= 1.0

    def test_tiling_exact_under_skew(self):
        g = build(unique(normal_keys(500, 2, seed=123, domain=256)), b=2)
        assert_exact_tiling(g)
        g.check_invariants()


class TestSearchCost:
    def test_two_disk_accesses(self):
        g = build(unique(uniform_keys(400, 2, seed=124, domain=256)))
        keys = [k for k, _ in g.items()][:50]
        before = g.store.stats.snapshot()
        for key in keys:
            g.search(key)
        delta = g.store.stats.delta(before)
        assert delta.reads == 2 * len(keys)
        assert delta.writes == 0


class TestMerging:
    def test_delete_all_empties_pages(self):
        keys = unique(uniform_keys(400, 2, seed=125, domain=256))
        g = build(keys, b=2)
        for key in keys:
            g.delete(key)
        g.check_invariants()
        assert len(g) == 0
        assert g.data_page_count == 0

    def test_scales_survive_deletion(self):
        """The classic grid file never removes scale boundaries; regions
        merge but the directory shape persists (no deadlock, §4.2)."""
        keys = unique(uniform_keys(400, 2, seed=126, domain=256))
        g = build(keys, b=2)
        shape = g.grid_shape
        for key in keys[:200]:
            g.delete(key)
        g.check_invariants()
        assert g.grid_shape == shape
