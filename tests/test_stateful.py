"""Hypothesis stateful testing: every scheme against a dict model.

The state machine drives an index through arbitrary interleavings of
inserts, deletes, searches and range queries, continuously checking the
answers against a plain dictionary and periodically re-verifying the
structural invariants.  This is the strongest correctness artillery in
the suite — shrinking produces minimal failing operation sequences.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro import BMEHTree, GridFile, KDBTree, MDEH, MEHTree, ZOrderIndex
from repro.errors import DuplicateKeyError, KeyNotFoundError

KEY = st.tuples(st.integers(0, 63), st.integers(0, 63))


class IndexMachine(RuleBasedStateMachine):
    scheme = None
    options: dict = {}

    def __init__(self):
        super().__init__()
        self.index = self.scheme(2, 2, widths=6, **self.options)
        self.model = {}
        self.steps = 0

    @rule(key=KEY, value=st.integers())
    def insert(self, key, value):
        self.steps += 1
        if key in self.model:
            with pytest.raises(DuplicateKeyError):
                self.index.insert(key, value)
        else:
            self.index.insert(key, value)
            self.model[key] = value

    @rule(key=KEY)
    def delete(self, key):
        self.steps += 1
        if key in self.model:
            assert self.index.delete(key) == self.model.pop(key)
        else:
            with pytest.raises(KeyNotFoundError):
                self.index.delete(key)

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete_existing(self, data):
        key = data.draw(st.sampled_from(sorted(self.model)))
        assert self.index.delete(key) == self.model.pop(key)

    @rule(key=KEY)
    def search(self, key):
        if key in self.model:
            assert self.index.search(key) == self.model[key]
        else:
            with pytest.raises(KeyNotFoundError):
                self.index.search(key)

    @rule(corner_a=KEY, corner_b=KEY)
    def range_query(self, corner_a, corner_b):
        lows = tuple(min(a, b) for a, b in zip(corner_a, corner_b))
        highs = tuple(max(a, b) for a, b in zip(corner_a, corner_b))
        got = sorted(k for k, _ in self.index.range_search(lows, highs))
        want = sorted(
            k for k in self.model
            if all(lo <= c <= hi for lo, c, hi in zip(lows, k, highs))
        )
        assert got == want

    @invariant()
    def size_matches(self):
        assert len(self.index) == len(self.model)

    @invariant()
    def structure_sound_periodically(self):
        if self.steps % 7 == 0:
            self.index.check_invariants()


class MDEHMachine(IndexMachine):
    scheme = MDEH


class MEHMachine(IndexMachine):
    scheme = MEHTree


class BMEHMachine(IndexMachine):
    scheme = BMEHTree


class BMEHPerDimMachine(IndexMachine):
    scheme = BMEHTree
    options = {"node_policy": "per_dim"}


class GridFileMachine(IndexMachine):
    scheme = GridFile


class KDBMachine(IndexMachine):
    scheme = KDBTree
    options = {"region_capacity": 8}


class ZOrderMachine(IndexMachine):
    scheme = ZOrderIndex


_settings = settings(max_examples=15, stateful_step_count=40, deadline=None)

TestMDEHStateful = MDEHMachine.TestCase
TestMDEHStateful.settings = _settings
TestMEHStateful = MEHMachine.TestCase
TestMEHStateful.settings = _settings
TestBMEHStateful = BMEHMachine.TestCase
TestBMEHStateful.settings = _settings
TestBMEHPerDimStateful = BMEHPerDimMachine.TestCase
TestBMEHPerDimStateful.settings = _settings
TestGridFileStateful = GridFileMachine.TestCase
TestGridFileStateful.settings = _settings
TestKDBStateful = KDBMachine.TestCase
TestKDBStateful.settings = _settings
TestZOrderStateful = ZOrderMachine.TestCase
TestZOrderStateful.settings = _settings
