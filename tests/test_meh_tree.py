"""Structural tests specific to the root-down MEH-tree baseline."""

import random

from repro import MEHTree
from repro.analysis import assert_exact_tiling
from repro.workloads import normal_keys, uniform_keys, unique


def build(keys, b=4, widths=8, **kw):
    index = MEHTree(2, b, widths=widths, **kw)
    for i, key in enumerate(keys):
        index.insert(key, i)
    return index


def leaf_depths(index):
    depths = []

    def walk(node_id, level):
        node = index.store.peek(node_id)
        for entry in node.entries():
            if entry.is_node:
                walk(entry.ptr, level + 1)
            else:
                depths.append(level)

    walk(index.root_id, 1)
    return depths


class TestUnbalancedGrowth:
    def test_skew_produces_uneven_depths(self):
        """The MEH-tree's defining weakness: dense areas sit deeper."""
        keys = unique(normal_keys(900, 2, seed=40, domain=256))
        index = build(keys, b=2)
        depths = leaf_depths(index)
        assert max(depths) > min(depths)
        index.check_invariants()

    def test_root_never_moves(self):
        index = MEHTree(2, 2, widths=8)
        root = index.root_id
        for key in unique(uniform_keys(500, 2, seed=41, domain=256)):
            index.insert(key)
        assert index.root_id == root
        assert index.store.is_pinned(root)

    def test_child_levels_increase_downward(self):
        keys = unique(uniform_keys(700, 2, seed=42, domain=256))
        index = build(keys, b=2)
        index.check_invariants()  # checks child.level == parent.level + 1

    def test_sigma_counts_node_slots(self):
        index = build(unique(uniform_keys(500, 2, seed=43, domain=256)))
        assert index.directory_size == index.node_count * (1 << index.phi)

    def test_tiling_is_exact(self):
        index = build(unique(normal_keys(600, 2, seed=44, domain=256)), b=2)
        assert_exact_tiling(index)


class TestCollapse:
    def test_delete_all_collapses_to_root(self):
        keys = unique(uniform_keys(600, 2, seed=45, domain=256))
        index = build(keys, b=2)
        assert index.node_count > 1
        for key in keys:
            index.delete(key)
        index.check_invariants()
        assert len(index) == 0
        assert index.node_count == 1
        assert index.data_page_count == 0

    def test_interleaved_operations(self):
        rng = random.Random(46)
        index = MEHTree(2, 2, widths=8)
        model = {}
        for step in range(700):
            if model and rng.random() < 0.35:
                key = rng.choice(list(model))
                assert index.delete(key) == model.pop(key)
            else:
                key = (rng.randrange(256), rng.randrange(256))
                if key in model:
                    continue
                index.insert(key, step)
                model[key] = step
            if step % 120 == 0:
                index.check_invariants()
        index.check_invariants()
        assert dict(index.items()) == model
