"""Unit tests for the page store, its backends and I/O accounting."""

import pytest

from repro.errors import SerializationError, StorageError
from repro.storage import DataPage, FileBackend, MemoryBackend, PageStore
from repro.storage.iostats import IOStats, OperationCounter


class TestIOStats:
    def test_accesses_sums(self):
        stats = IOStats(3, 4)
        assert stats.accesses == 7

    def test_snapshot_delta(self):
        stats = IOStats()
        before = stats.snapshot()
        stats.reads += 2
        stats.writes += 1
        delta = stats.delta(before)
        assert (delta.reads, delta.writes) == (2, 1)

    def test_snapshot_is_independent(self):
        stats = IOStats()
        snap = stats.snapshot()
        stats.reads += 5
        assert snap.reads == 0

    def test_add(self):
        total = IOStats(1, 2) + IOStats(3, 4)
        assert (total.reads, total.writes) == (4, 6)

    def test_reset(self):
        stats = IOStats(9, 9)
        stats.reset()
        assert stats.accesses == 0


class TestOperationCounter:
    def test_dedups_reads(self):
        stats = IOStats()
        op = OperationCounter(stats)
        op.count_read("a")
        op.count_read("a")
        op.count_read("b")
        assert stats.reads == 2

    def test_reads_and_writes_independent(self):
        stats = IOStats()
        op = OperationCounter(stats)
        op.count_read("a")
        op.count_write("a")
        op.count_write("a")
        assert (stats.reads, stats.writes) == (1, 1)

    def test_forget_allows_recount(self):
        stats = IOStats()
        op = OperationCounter(stats)
        op.count_read("a")
        op.forget("a")
        op.count_read("a")
        assert stats.reads == 2


class TestPageStore:
    def test_allocate_counts_one_write(self):
        store = PageStore()
        store.allocate(DataPage(2))
        assert store.stats.writes == 1
        assert store.page_count == 1

    def test_ids_monotonic_even_after_free(self):
        store = PageStore()
        a = store.allocate(DataPage(2))
        store.free(a)
        b = store.allocate(DataPage(2))
        assert b == a + 1
        assert store.pages_allocated == 2
        assert store.page_count == 1

    def test_read_write_roundtrip(self):
        store = PageStore()
        page = DataPage(2)
        pid = store.allocate(page)
        assert store.read(pid) is page
        store.write(pid)
        assert store.stats == IOStats(1, 2) or store.stats.reads == 1

    def test_read_missing(self):
        with pytest.raises(StorageError):
            PageStore().read(0)

    def test_write_missing(self):
        with pytest.raises(StorageError):
            PageStore().write(42)

    def test_free_missing(self):
        with pytest.raises(StorageError):
            PageStore().free(3)

    def test_peek_is_uncharged(self):
        store = PageStore()
        pid = store.allocate(DataPage(2))
        before = store.stats.snapshot()
        store.peek(pid)
        assert store.stats.delta(before).accesses == 0

    def test_operation_dedup(self):
        store = PageStore()
        pid = store.allocate(DataPage(2))
        before = store.stats.snapshot()
        with store.operation():
            store.read(pid)
            store.read(pid)
            store.write(pid)
            store.write(pid)
        delta = store.stats.delta(before)
        assert (delta.reads, delta.writes) == (1, 1)

    def test_nested_operations_share_scope(self):
        store = PageStore()
        pid = store.allocate(DataPage(2))
        before = store.stats.snapshot()
        with store.operation():
            store.read(pid)
            with store.operation():
                store.read(pid)
        assert store.stats.delta(before).reads == 1

    def test_without_operation_every_access_counts(self):
        store = PageStore()
        pid = store.allocate(DataPage(2))
        before = store.stats.snapshot()
        store.read(pid)
        store.read(pid)
        assert store.stats.delta(before).reads == 2

    def test_pinned_pages_are_free(self):
        store = PageStore()
        pid = store.allocate(DataPage(2))
        store.pin(pid)
        before = store.stats.snapshot()
        store.read(pid)
        store.write(pid)
        assert store.stats.delta(before).accesses == 0
        store.unpin(pid)
        store.read(pid)
        assert store.stats.delta(before).reads == 1

    def test_pin_missing_page(self):
        with pytest.raises(StorageError):
            PageStore().pin(0)

    def test_cannot_free_pinned(self):
        store = PageStore()
        pid = store.allocate(DataPage(2))
        store.pin(pid)
        with pytest.raises(StorageError):
            store.free(pid)

    def test_virtual_tokens(self):
        store = PageStore()
        before = store.stats.snapshot()
        with store.operation():
            store.count_virtual_read("dirpage-1")
            store.count_virtual_read("dirpage-1")
            store.count_virtual_write("dirpage-1")
        delta = store.stats.delta(before)
        assert (delta.reads, delta.writes) == (1, 1)

    def test_contains_and_page_ids(self):
        store = PageStore()
        a = store.allocate(DataPage(2))
        b = store.allocate(DataPage(2))
        store.free(a)
        assert a not in store and b in store
        assert list(store.page_ids()) == [b]


class TestFileBackend:
    def test_roundtrip(self, tmp_path):
        backend = FileBackend(str(tmp_path / "pages.db"))
        store = PageStore(backend)
        page = DataPage(4)
        page.put((7, 9), {"payload": [1, 2, 3]})
        pid = store.allocate(page)
        loaded = store.read(pid)
        assert loaded.get((7, 9)) == {"payload": [1, 2, 3]}
        assert loaded.capacity == 4
        store.close()

    def test_write_requires_object(self, tmp_path):
        store = PageStore(FileBackend(str(tmp_path / "pages.db")))
        pid = store.allocate(DataPage(2))
        with pytest.raises(StorageError):
            store.write(pid)  # byte backends need the object
        store.write(pid, DataPage(2))
        store.close()

    def test_reopen_preserves_pages(self, tmp_path):
        path = str(tmp_path / "pages.db")
        backend = FileBackend(path)
        store = PageStore(backend)
        page = DataPage(4)
        page.put((1, 2), b"x" * 100)
        pid = store.allocate(page)
        backend.flush()
        store.close()

        reopened = PageStore(FileBackend(path))
        assert reopened.read(pid).get((1, 2)) == b"x" * 100
        # New allocations continue after the existing ids.
        assert reopened.allocate(DataPage(2)) == pid + 1
        reopened.close()

    def test_discard_marks_slot_free(self, tmp_path):
        backend = FileBackend(str(tmp_path / "pages.db"))
        pid = 0
        backend.store(pid, DataPage(2))
        assert pid in backend
        backend.discard(pid)
        assert pid not in backend
        with pytest.raises(StorageError):
            backend.load(pid)
        backend.close()

    def test_oversized_page_rejected(self, tmp_path):
        backend = FileBackend(str(tmp_path / "pages.db"), page_size=128)
        big = DataPage(64)
        for i in range(30):
            big.put((i,), b"y" * 32)
        with pytest.raises(SerializationError):
            backend.store(0, big)
        backend.close()

    def test_page_size_mismatch_on_reopen(self, tmp_path):
        path = str(tmp_path / "pages.db")
        FileBackend(path, page_size=4096).close()
        with pytest.raises(StorageError):
            FileBackend(path, page_size=8192)

    def test_not_a_page_file(self, tmp_path):
        path = tmp_path / "junk.db"
        path.write_bytes(b"this is not a page file header")
        with pytest.raises(StorageError):
            FileBackend(str(path))

    def test_tiny_page_size_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            FileBackend(str(tmp_path / "pages.db"), page_size=16)

    def test_corrupt_slot_length_raises_named_error(self, tmp_path):
        """A torn slot whose stored length exceeds the payload must not
        reach the codec as garbage bytes."""
        import struct

        path = tmp_path / "pages.db"
        backend = FileBackend(str(path), page_size=128)
        backend.store(0, DataPage(2))
        backend.close()
        with open(path, "r+b") as f:
            f.seek(FileBackend._HEADER.size)  # slot 0's length field
            f.write(struct.pack("<I", 1 << 20))
        reopened = FileBackend(str(path), page_size=128)
        assert 0 in reopened  # the slot header says live ...
        with pytest.raises(StorageError, match="page 0.*corrupt"):
            reopened.load(0)  # ... but the image must not be decoded
        reopened.close()

    def test_live_map_survives_reopen(self, tmp_path):
        path = str(tmp_path / "pages.db")
        backend = FileBackend(path)
        for pid in range(4):
            backend.store(pid, DataPage(2))
        backend.discard(1)
        backend.close()
        reopened = FileBackend(path)
        assert list(reopened.page_ids()) == [0, 2, 3]
        assert 1 not in reopened and 3 in reopened
        assert -1 not in reopened and 99 not in reopened
        reopened.close()

    def test_contains_does_not_touch_the_file(self, tmp_path):
        """Membership is answered from the in-memory live map — no
        seek-to-EOF, no header re-read."""
        backend = FileBackend(str(tmp_path / "pages.db"))
        backend.store(0, DataPage(2))
        backend._file.close()  # any further file I/O would raise
        assert 0 in backend
        assert 7 not in backend
        assert list(backend.page_ids()) == [0]


class TestWriteExistenceValidation:
    """``write(pid, obj)`` on a page the store never allocated (or has
    freed) must raise — not silently materialize a page behind the
    allocator's back, desynchronizing ``page_count``/``pages_allocated``
    from the backend."""

    def test_write_object_to_never_allocated_id(self):
        store = PageStore()
        with pytest.raises(StorageError):
            store.write(42, DataPage(2))
        assert store.page_count == 0
        assert 42 not in store

    def test_write_object_to_freed_page(self):
        store = PageStore()
        pid = store.allocate(DataPage(2))
        store.free(pid)
        with pytest.raises(StorageError):
            store.write(pid, DataPage(2))
        assert store.page_count == 0

    def test_write_object_to_never_allocated_id_on_file(self, tmp_path):
        backend = FileBackend(str(tmp_path / "w.db"), page_size=4096)
        store = PageStore(backend)
        store.allocate(DataPage(2))
        with pytest.raises(StorageError):
            store.write(9, DataPage(2))
        assert store.page_count == 1
        assert 9 not in backend

    def test_write_object_to_missing_page_with_pool(self, tmp_path):
        from repro.storage import BufferPool

        backend = FileBackend(str(tmp_path / "wp.db"), page_size=4096)
        store = PageStore(backend, pool=BufferPool(4))
        with pytest.raises(StorageError):
            store.write(3, DataPage(2))
        store.flush()
        assert 3 not in backend
        assert store.page_count == 0

    def test_write_to_live_page_still_works(self):
        store = PageStore()
        pid = store.allocate(DataPage(2))
        replacement = DataPage(2)
        replacement.put((5, 5), "new")
        store.write(pid, replacement)
        assert store.read(pid).get((5, 5)) == "new"
