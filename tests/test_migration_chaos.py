"""Chaos suite: kill an online migration at every swept phase.

The :class:`~repro.server.migrate.ShardMigrator` exposes a fault-
injection hook called at each phase of a split — after the target
worker is forked (``spawned``), after the bulk snapshot copy
(``copied``), inside the router's write fence (``fenced``), right after
the atomic topology replace (``persisted``) and right after the new
links are installed (``installed``).  Each scenario here crashes the
migration driver at one of those points, or SIGKILLs the source/target
worker mid-copy, and requires:

* a failure **before** the commit point (the ``topology.json``
  replace) leaves the cluster exactly as it was — same epoch, same
  shard count, every acked write still served — and the split can
  simply be retried;
* a failure **after** the commit point leaves the *new* topology
  authoritative: a cluster restart
  (:meth:`~repro.server.shard.ShardManager.from_workdir`) comes up on
  the rebalanced partition;
* in every case, restart recovery is exact — each acked write reads
  back with its acked value, once (the ranged check would double-count
  an orphan leaking past the router's ownership filter) — and each
  worker's WAL replays offline into a sanitizer-clean index whose
  moving-range contents carry the acked values.
"""

import asyncio
import random

import pytest

from repro.errors import CrashError, ReproError
from repro.sanitize import check_structure
from repro.server import QueryClient, ShardManager
from repro.server.router import ShardRouter
from repro.storage import recover_index

DIMS = 2
WIDTH = 16

#: Phases before the atomic topology replace: a crash there must be a
#: clean no-op abort.
PRE_COMMIT = ("spawned", "copied", "fenced")
#: Phases at or after the commit point: the new topology is live.
POST_COMMIT = ("persisted", "installed")


def run(coro):
    return asyncio.run(coro)


def seeded_keys(n, seed):
    rng = random.Random(seed)
    seen = set()
    while len(seen) < n:
        seen.add((rng.randrange(1 << WIDTH), rng.randrange(1 << WIDTH)))
    return sorted(seen)


def make_manager(tmp_path, shards=2, sample=None):
    return ShardManager(
        shards,
        dims=DIMS,
        widths=WIDTH,
        page_capacity=8,
        workdir=tmp_path,
        sample_keys=sample,
    )


async def _oracle_readback(router, values, maybe=None):
    """Every acked write, point-read and range-read, exactly once.

    ``maybe`` holds writes whose ack never reached the client (the
    connection died mid-request): those are allowed to be present with
    the written value — a write can be durable without being acked —
    but nothing else may appear, and nothing may appear twice.
    """
    maybe = maybe or {}
    host, port = router.address
    client = await QueryClient.connect(host, port, negotiate=True)
    async with client:
        every = sorted(values)
        assert await client.search_many(every) == [
            values[key] for key in every
        ]
        ranged = await client.range_search(
            (0, 0), ((1 << WIDTH) - 1, (1 << WIDTH) - 1)
        )
        got = {}
        for key, value in ranged:
            got[tuple(key)] = value
        assert len(got) == len(ranged), "a key was returned twice"
        for key, value in got.items():
            expected = values.get(key, maybe.get(key))
            assert expected == value, (
                f"key {key} served as {value!r}, expected {expected!r}"
            )
        assert set(values) <= set(got)


def _restart_and_verify(tmp_path, values, expect_shards, maybe=None):
    """The recovery path: reboot the cluster from its workdir and
    require the exact acked state on the expected topology."""
    manager = ShardManager.from_workdir(tmp_path, page_capacity=8)
    assert manager.shards == expect_shards
    manager.start()
    try:

        async def scenario():
            async with ShardRouter(manager) as router:
                await _oracle_readback(router, values, maybe)

        run(scenario())
    finally:
        manager.stop()


def _offline_wal_check(tmp_path, values, maybe=None):
    """Each worker WAL must replay into a sanitizer-clean index, and the
    union of the replayed contents must carry every acked value (a
    not-yet-evicted orphan is a duplicate with the same value — never a
    lost or torn write).  ``maybe`` keys (unacked, outcome unknown) may
    or may not be present, but never with a torn value."""
    maybe = maybe or {}
    wals = sorted(tmp_path.glob("shard-*.pages"))
    assert wals
    recovered = {}
    for wal in wals:
        index = recover_index(str(wal))
        if index is None:
            continue
        check_structure(index)
        try:
            for key, acked in list(values.items()) + list(maybe.items()):
                if key in index:
                    found = index.search(key)
                    assert found == acked, (
                        f"{wal.name}: key {key} recovered as {found!r}, "
                        f"written as {acked!r}"
                    )
                    if key in values:
                        recovered[key] = found
        finally:
            index.store.close()
    assert recovered == values


class TestCrashDuringSplit:
    @pytest.mark.parametrize("label", PRE_COMMIT)
    def test_pre_commit_crash_is_a_clean_abort(self, tmp_path, label):
        keys = seeded_keys(96, seed=83)
        values = {key: i for i, key in enumerate(keys)}
        manager = make_manager(tmp_path, shards=2, sample=keys)
        manager.start()
        try:

            async def scenario():
                async with ShardRouter(manager, max_inflight=256) as router:
                    host, port = router.address
                    client = await QueryClient.connect(
                        host, port, negotiate=True
                    )
                    async with client:
                        await client.insert_many(
                            [(key, values[key]) for key in keys]
                        )

                        def crash(phase):
                            if phase == label:
                                raise CrashError(f"driver died at {phase}")

                        router.migrator.failpoint = crash
                        with pytest.raises(CrashError):
                            await router.migrator.split(shard=0)
                        # the cluster is exactly as it was: no epoch
                        # bump, no extra shard, nothing lost
                        assert router.epoch == 1
                        assert manager.epoch == 1
                        assert len(manager.specs) == 2
                        await _oracle_readback(router, values)
                        # and the abort is retryable: the same split,
                        # un-sabotaged, now lands
                        router.migrator.failpoint = None
                        split = await router.migrator.split(shard=0)
                        assert split["shards"] == 3
                        assert router.epoch == 2
                        await _oracle_readback(router, values)

            run(scenario())
        finally:
            manager.stop()
        _restart_and_verify(tmp_path, values, expect_shards=3)
        _offline_wal_check(tmp_path, values)

    @pytest.mark.parametrize("label", POST_COMMIT)
    def test_post_commit_crash_recovers_to_the_new_topology(
        self, tmp_path, label
    ):
        keys = seeded_keys(96, seed=89)
        values = {key: i for i, key in enumerate(keys)}
        manager = make_manager(tmp_path, shards=2, sample=keys)
        manager.start()
        try:

            async def scenario():
                async with ShardRouter(manager, max_inflight=256) as router:
                    host, port = router.address
                    client = await QueryClient.connect(
                        host, port, negotiate=True
                    )
                    async with client:
                        await client.insert_many(
                            [(key, values[key]) for key in keys]
                        )

                        def crash(phase):
                            if phase == label:
                                raise CrashError(f"driver died at {phase}")

                        router.migrator.failpoint = crash
                        # the topology replace already happened: the
                        # crash is after the commit point, so the split
                        # is durable even though the driver died
                        with pytest.raises(CrashError):
                            await router.migrator.split(shard=0)
                        assert manager.epoch == 2
                        assert len(manager.specs) == 3

            run(scenario())
        finally:
            # SIGTERM everything — including the committed target, which
            # checkpoints the moved range it now owns
            manager.stop()
        _restart_and_verify(tmp_path, values, expect_shards=3)
        _offline_wal_check(tmp_path, values)


class TestKillWorkerDuringSplit:
    def test_source_worker_fail_stop_mid_copy(self, tmp_path):
        clients_n = 4
        preload = seeded_keys(80, seed=97)
        live = [k for k in seeded_keys(140, seed=98)
                if k not in set(preload)][: clients_n * 8]
        values = {key: i for i, key in enumerate(preload)}
        live_values = {key: 1000 + i for i, key in enumerate(live)}
        maybe = {}
        manager = make_manager(tmp_path, shards=2, sample=preload)
        manager.start()
        try:

            async def scenario():
                async with ShardRouter(
                    manager, max_inflight=256, connect_timeout=2.0
                ) as router:
                    host, port = router.address
                    admin = await QueryClient.connect(
                        host, port, negotiate=True
                    )
                    writers = [
                        await QueryClient.connect(host, port, negotiate=True)
                        for _ in range(clients_n)
                    ]
                    try:
                        await admin.insert_many(
                            [(key, values[key]) for key in preload]
                        )

                        def crash(phase):
                            if phase == "copied":
                                manager.kill(0)  # fail-stop the source

                        router.migrator.failpoint = crash

                        async def one_writer(client, share):
                            # An errored insert was never acked, so it
                            # is not owed — but it may still have been
                            # group-committed before the kill, so its
                            # outcome is unknown rather than absent.
                            acked, unknown = {}, {}
                            for key in share:
                                try:
                                    await client.insert(
                                        key, live_values[key]
                                    )
                                except (ReproError, ConnectionError,
                                        OSError):
                                    unknown[key] = live_values[key]
                                    continue
                                acked[key] = live_values[key]
                            return acked, unknown

                        shares = [
                            live[c::clients_n] for c in range(clients_n)
                        ]
                        write_tasks = [
                            asyncio.ensure_future(one_writer(c, s))
                            for c, s in zip(writers, shares)
                        ]
                        with pytest.raises(
                            (ReproError, ConnectionError, OSError)
                        ):
                            await asyncio.wait_for(
                                router.migrator.split(shard=0), timeout=30.0
                            )
                        for acked, unknown in await asyncio.gather(
                            *write_tasks
                        ):
                            values.update(acked)
                            maybe.update(unknown)
                        # no commit happened: the topology is unchanged
                        assert manager.epoch == 1
                        assert len(manager.specs) == 2
                    finally:
                        await admin.close()
                        for client in writers:
                            await client.close()

            run(scenario())
        finally:
            manager.stop()
        # Every write acked before or during the crash was group-
        # committed to the source WAL before its future resolved, so a
        # restart serves all of it — fail-stop loses nothing acked.
        _restart_and_verify(tmp_path, values, expect_shards=2, maybe=maybe)
        _offline_wal_check(tmp_path, values, maybe=maybe)

    def test_target_worker_fail_stop_mid_copy(self, tmp_path):
        keys = seeded_keys(96, seed=101)
        values = {key: i for i, key in enumerate(keys)}
        manager = make_manager(tmp_path, shards=2, sample=keys)
        manager.start()
        spawned = {}
        real_spawn = manager.spawn_worker

        def spying_spawn():
            out = real_spawn()
            spawned["proc"] = out[1]
            return out

        manager.spawn_worker = spying_spawn
        try:

            async def scenario():
                async with ShardRouter(manager, max_inflight=256) as router:
                    host, port = router.address
                    client = await QueryClient.connect(
                        host, port, negotiate=True
                    )
                    async with client:
                        await client.insert_many(
                            [(key, values[key]) for key in keys]
                        )

                        def crash(phase):
                            if phase == "copied":
                                spawned["proc"].kill()  # fail-stop target

                        router.migrator.failpoint = crash
                        with pytest.raises(
                            (ReproError, ConnectionError, OSError)
                        ):
                            await asyncio.wait_for(
                                router.migrator.split(shard=0), timeout=30.0
                            )
                        # pre-commit: clean abort, nothing changed
                        assert manager.epoch == 1
                        assert len(manager.specs) == 2
                        await _oracle_readback(router, values)
                        # the dead target's WAL was discarded, so the
                        # retry forks a fresh worker and succeeds
                        router.migrator.failpoint = None
                        split = await router.migrator.split(shard=0)
                        assert split["shards"] == 3
                        await _oracle_readback(router, values)

            run(scenario())
        finally:
            manager.stop()
        _restart_and_verify(tmp_path, values, expect_shards=3)
        _offline_wal_check(tmp_path, values)
