"""Structural tests specific to the z-order index."""

import pytest

from repro import BMEHTree, ZOrderIndex
from repro.analysis import assert_exact_tiling
from repro.workloads import normal_keys, uniform_keys, unique


def build(keys, b=4, widths=8, **kw):
    index = ZOrderIndex(2, b, widths=widths, **kw)
    for i, key in enumerate(keys):
        index.insert(key, i)
    return index


class TestConstruction:
    def test_total_width_capped(self):
        with pytest.raises(ValueError):
            ZOrderIndex(3, 4, widths=(32, 32, 32))

    def test_refinement_cap_validated(self):
        with pytest.raises(ValueError):
            ZOrderIndex(2, 4, widths=8, refinement_cap=0)

    def test_shares_the_store(self):
        index = ZOrderIndex(2, 4, widths=8)
        assert index.file.store is index.store


class TestZIntervals:
    def test_whole_domain_is_one_interval(self):
        index = ZOrderIndex(2, 4, widths=4)
        intervals = list(index.z_intervals((0, 0), (15, 15)))
        assert intervals == [(0, 255, True)]

    def test_quadrant_is_one_interval(self):
        index = ZOrderIndex(2, 4, widths=4)
        intervals = list(index.z_intervals((0, 0), (7, 7)))
        assert intervals == [(0, 63, True)]

    def test_off_grid_box_shatters(self):
        index = ZOrderIndex(2, 4, widths=4)
        intervals = list(index.z_intervals((3, 3), (12, 12)))
        assert len(intervals) > 1
        # Exact intervals lie fully inside; all are within the domain.
        for low, high, _exact in intervals:
            assert 0 <= low <= high <= 255

    def test_intervals_cover_exactly_the_box(self):
        from repro.bits import deinterleave

        index = ZOrderIndex(2, 4, widths=4, refinement_cap=8)
        lows, highs = (3, 5), (12, 9)
        covered = set()
        for low, high, exact in index.z_intervals(lows, highs):
            for z in range(low, high + 1):
                codes = deinterleave(z, (4, 4))
                inside = all(
                    lows[j] <= codes[j] <= highs[j] for j in range(2)
                )
                if exact:
                    assert inside, (z, codes)
                if inside:
                    covered.add(codes)
        want = {
            (x, y)
            for x in range(3, 13)
            for y in range(5, 10)
        }
        assert covered == want

    def test_refinement_cap_yields_inexact(self):
        index = ZOrderIndex(2, 4, widths=8, refinement_cap=2)
        intervals = list(index.z_intervals((3, 3), (200, 150)))
        assert any(not exact for _, _, exact in intervals)


class TestBehaviour:
    def test_roundtrip_and_ranges(self):
        keys = unique(uniform_keys(500, 2, seed=170, domain=256))
        index = build(keys)
        index.check_invariants()
        for i, key in enumerate(keys):
            assert index.search(key) == i
        lo, hi = (40, 30), (190, 220)
        got = sorted(k for k, _ in index.range_search(lo, hi))
        want = sorted(
            k for k in keys if lo[0] <= k[0] <= hi[0] and lo[1] <= k[1] <= hi[1]
        )
        assert got == want

    def test_exact_match_is_two_accesses(self):
        keys = unique(uniform_keys(400, 2, seed=171, domain=256))
        index = build(keys)
        before = index.store.stats.snapshot()
        for key in keys[:50]:
            index.search(key)
        assert index.store.stats.delta(before).reads == 100

    def test_regions_are_boxes(self):
        keys = unique(normal_keys(400, 2, seed=172, domain=256))
        index = build(keys, b=2)
        assert_exact_tiling(index)

    def test_same_answers_as_bmeh(self):
        keys = unique(uniform_keys(400, 2, seed=173, domain=256))
        z = build(keys)
        bmeh = BMEHTree(2, 4, widths=8)
        for i, key in enumerate(keys):
            bmeh.insert(key, i)
        box = ((10, 10), (200, 100))
        assert sorted(z.range_search(*box)) == sorted(bmeh.range_search(*box))

    def test_mixed_widths(self):
        index = ZOrderIndex(2, 4, widths=(4, 10))
        keys = [(a, b) for a in range(0, 16, 3) for b in range(0, 1024, 37)]
        for i, key in enumerate(keys):
            index.insert(key, i)
        index.check_invariants()
        got = sorted(k for k, _ in index.range_search((2, 100), (9, 700)))
        want = sorted(
            k for k in keys if 2 <= k[0] <= 9 and 100 <= k[1] <= 700
        )
        assert got == want
