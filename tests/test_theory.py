"""The paper's theorems, as formulas and as measured bounds."""

import pytest

from repro import BMEHTree
from repro.analysis import (
    covering_cells,
    max_tree_levels,
    onelevel_directory_growth_exponent,
    expected_onelevel_directory_size,
    theorem2_worst_case_splits,
    theorem3_access_bound,
    theorem4_range_bound,
)
from repro.analysis.theory import doubling_count
from repro.core.hashtree import default_xi
from repro.workloads import adversarial_common_prefix_keys, uniform_keys, unique


class TestFormulas:
    def test_levels_paper_examples(self):
        # §3.1: phi = 9 gives l <= 3 for w <= 27 and l <= 4 for w <= 36.
        assert max_tree_levels(27, 9) == 3
        assert max_tree_levels(36, 9) == 4
        assert max_tree_levels(28, 9) == 4

    def test_levels_validation(self):
        with pytest.raises(ValueError):
            max_tree_levels(0, 6)
        with pytest.raises(ValueError):
            max_tree_levels(32, 0)

    def test_theorem2_formula(self):
        # l(l-1)/2 * phi + l with l = ceil(w/phi).
        assert theorem2_worst_case_splits(12, 6) == 1 * 6 + 2  # l=2
        assert theorem2_worst_case_splits(18, 6) == 3 * 6 + 3  # l=3
        assert theorem2_worst_case_splits(6, 6) == 0 + 1  # l=1

    def test_theorem3_dominates_theorem2(self):
        for w, phi in ((12, 4), (32, 6), (64, 9)):
            assert theorem3_access_bound(w, phi) > theorem2_worst_case_splits(w, phi)

    def test_theorem4_formula(self):
        assert theorem4_range_bound(10, 32, 6) == max_tree_levels(32, 6) * 10
        assert theorem4_range_bound(0, 32, 6) == max_tree_levels(32, 6)
        with pytest.raises(ValueError):
            theorem4_range_bound(-1, 32, 6)

    def test_growth_exponent(self):
        assert onelevel_directory_growth_exponent(8) == pytest.approx(1.125)
        assert expected_onelevel_directory_size(1000, 8) == pytest.approx(
            1000 ** 1.125
        )
        with pytest.raises(ValueError):
            onelevel_directory_growth_exponent(0)
        with pytest.raises(ValueError):
            expected_onelevel_directory_size(-1, 8)

    def test_doubling_count(self):
        assert doubling_count(1) == 0
        assert doubling_count(1024) == 10
        with pytest.raises(ValueError):
            doubling_count(3)  # not a power of two
        with pytest.raises(ValueError):
            doubling_count(0)


class TestBoundsHoldInPractice:
    def test_height_never_exceeds_levels_bound(self):
        for phi in (2, 4, 6):
            index = BMEHTree(2, 2, widths=8, xi=default_xi(2, phi))
            for key in unique(uniform_keys(500, 2, seed=phi, domain=256)):
                index.insert(key)
            assert index.height() <= max_tree_levels(16, phi)

    def test_theorem2_bound_on_adversarial_stream(self):
        width, phi, b = 10, 4, 2
        index = BMEHTree(2, b, widths=width, xi=default_xi(2, phi))
        worst = 0
        for key in adversarial_common_prefix_keys(4 * b, dims=2, width=width):
            before = index.node_count
            index.insert(key)
            worst = max(worst, index.node_count - before)
        assert worst <= theorem2_worst_case_splits(2 * width, phi)
        index.check_invariants()

    def test_theorem4_bound_on_random_queries(self):
        index = BMEHTree(2, 4, widths=8)
        keys = unique(uniform_keys(600, 2, seed=7, domain=256))
        for key in keys:
            index.insert(key)
        for lows, highs in (((0, 0), (63, 63)), ((10, 200), (240, 230))):
            before = index.store.stats.snapshot()
            list(index.range_search(lows, highs))
            accesses = index.store.stats.delta(before).accesses
            n_r = covering_cells(index, lows, highs)
            assert accesses <= theorem4_range_bound(n_r, 8, index.phi)
