"""Cross-scheme equivalences.

All three paper schemes split data pages by the same cyclic-bit rule, so
over the same insertion stream they must produce the *same* set of data
pages — identical partitions, page counts and load factors.  Only the
directory organization (and therefore its size and I/O costs) differs.
This is also why the paper reports one α row per table.
"""

import pytest

from repro import MDEH, MEHTree, BMEHTree
from repro.analysis import partition_cells
from repro.workloads import normal_keys, uniform_keys, unique


def build_all(keys, b=4, widths=8):
    indexes = {}
    for cls in (MDEH, MEHTree, BMEHTree):
        index = cls(2, b, widths=widths)
        for i, key in enumerate(keys):
            index.insert(key, i)
        indexes[cls.__name__] = index
    return indexes


@pytest.fixture(scope="module")
def uniform_built():
    return build_all(unique(uniform_keys(700, 2, seed=80, domain=256)), b=4)


@pytest.fixture(scope="module")
def skewed_built():
    return build_all(unique(normal_keys(700, 2, seed=81, domain=256)), b=2)


class TestPartitionEquivalence:
    def test_same_page_count(self, uniform_built):
        counts = {n: i.data_page_count for n, i in uniform_built.items()}
        assert len(set(counts.values())) == 1, counts

    def test_same_load_factor(self, uniform_built):
        alphas = {n: i.load_factor for n, i in uniform_built.items()}
        assert max(alphas.values()) - min(alphas.values()) < 1e-12

    def test_same_partition_rectangles(self, uniform_built):
        partitions = {
            name: sorted(
                (cell.prefixes, cell.depths)
                for cell in partition_cells(index)
            )
            for name, index in uniform_built.items()
        }
        first = next(iter(partitions.values()))
        for name, partition in partitions.items():
            assert partition == first, f"{name} tiles the space differently"

    def test_same_partition_under_skew(self, skewed_built):
        partitions = {
            name: sorted(
                (cell.prefixes, cell.depths)
                for cell in partition_cells(index)
            )
            for name, index in skewed_built.items()
        }
        first = next(iter(partitions.values()))
        for partition in partitions.values():
            assert partition == first

    def test_same_query_answers(self, uniform_built):
        boxes = [((0, 0), (255, 255)), ((32, 64), (96, 200)), ((200, 0), (255, 40))]
        for lows, highs in boxes:
            answers = {
                name: sorted(k for k, _ in index.range_search(lows, highs))
                for name, index in uniform_built.items()
            }
            first = next(iter(answers.values()))
            for answer in answers.values():
                assert answer == first


class TestDirectoryDivergence:
    def test_directory_sizes_differ_by_design(self, skewed_built):
        """Same partition, different directory overheads — the paper's
        whole point.  The balanced tree must not exceed the flat
        directory under skew (at this scale it is far smaller)."""
        sizes = {n: i.directory_size for n, i in skewed_built.items()}
        assert sizes["BMEHTree"] <= sizes["MDEH"]

    def test_search_costs_reflect_structures(self, uniform_built):
        keys = [k for k, _ in uniform_built["MDEH"].items()][:100]
        costs = {}
        for name, index in uniform_built.items():
            before = index.store.stats.snapshot()
            for key in keys:
                index.search(key)
            costs[name] = index.store.stats.delta(before).reads / len(keys)
        assert costs["MDEH"] == 2.0
        assert costs["BMEHTree"] >= 2.0  # pays height, bounded by l
        assert costs["BMEHTree"] <= 4.0
