"""Depth exhaustion and pseudo-key collision handling (DESIGN.md §4.4)."""

import pytest

from repro import BMEHTree, MDEH, MEHTree
from repro.errors import CapacityError, DuplicateKeyError


class TestCapacityExhaustion:
    @pytest.mark.parametrize("cls", [MDEH, MEHTree, BMEHTree])
    def test_colliding_prefixes_beyond_capacity(self, cls):
        """More than b keys identical in every addressable bit cannot be
        separated; the insert must fail loudly, not loop forever."""
        index = cls(2, 2, widths=2)  # only 2 bits per dimension
        index.insert((0, 0))
        index.insert((0, 1))
        index.insert((1, 0))  # fine: distinct codes
        # Now exhaust one exact cell: (3,3) has a single code.
        index = cls(2, 1, widths=1)
        index.insert((0, 0))
        index.insert((0, 1))
        index.insert((1, 0))
        index.insert((1, 1))
        with pytest.raises(DuplicateKeyError):
            index.insert((1, 1))

    @pytest.mark.parametrize("cls", [MDEH, MEHTree, BMEHTree])
    def test_capacity_error_when_codes_collide(self, cls):
        """Distinct *application* keys that encode to near-identical
        codes exceed any page once all bits are consumed."""
        index = cls(1, 2, widths=(2,))
        index.insert((0,), "a")
        index.insert((1,), "b")
        index.insert((2,), "c")
        index.insert((3,), "d")
        # Page holding code 3 is full of... only one record; to overflow
        # a fully-split cell we need b+1 records with the SAME code,
        # which the duplicate check already rejects.  The capacity error
        # therefore needs b >= 2 with two distinct codes in one cell at
        # max depth — impossible at full split.  Exercise the guard via
        # the split-dimension chooser instead:
        from repro.errors import CapacityError as CE

        with pytest.raises(CE):
            index._next_split_dim(0, [2])

    @pytest.mark.parametrize("cls", [MDEH, MEHTree, BMEHTree])
    def test_full_domain_insertion(self, cls):
        """Inserting every code of a tiny domain must terminate and keep
        every record findable — the densest possible file."""
        index = cls(2, 2, widths=3)
        for a in range(8):
            for b in range(8):
                index.insert((a, b), a * 8 + b)
        index.check_invariants()
        assert len(index) == 64
        for a in range(8):
            for b in range(8):
                assert index.search((a, b)) == a * 8 + b

    def test_width_one_dimensions(self):
        index = BMEHTree(2, 1, widths=1)
        for key in ((0, 0), (0, 1), (1, 0), (1, 1)):
            index.insert(key)
        index.check_invariants()
        assert len(index) == 4
