"""The benchmark harness itself (small-scale end-to-end runs)."""

import pytest

from repro.analysis.metrics import GrowthSeries
from repro.bench import (
    PAPER_TABLES,
    TableExperiment,
    format_series,
    format_table,
    growth_series,
    run_table_cell,
    shape_assertions,
)
from repro.bench.harness import TABLE_EXPERIMENTS, make_index
from repro.bench.paper_data import PAGE_CAPACITIES, PAPER_N


class TestPaperData:
    def test_all_tables_present(self):
        assert set(PAPER_TABLES) == {"table2", "table3", "table4"}

    def test_every_cell_complete(self):
        for table in PAPER_TABLES.values():
            assert set(table) == {"MDEH", "MEHTree", "BMEHTree"}
            for scheme_rows in table.values():
                assert set(scheme_rows) == set(PAGE_CAPACITIES)

    def test_known_values_transcribed(self):
        t3 = PAPER_TABLES["table3"]
        assert t3["MDEH"][8].insertion_accesses == 229.34
        assert t3["MDEH"][8].directory_size == 524_288
        assert t3["BMEHTree"][8].directory_size == 20_800
        assert PAPER_TABLES["table2"]["BMEHTree"][8].directory_size == 17_984
        assert PAPER_N == 40_000


class TestHarness:
    def test_make_index(self):
        index = make_index("BMEHTree", 2, 8)
        assert index.page_capacity == 8 and index.dims == 2

    def test_experiments_defined(self):
        assert TABLE_EXPERIMENTS["table3"].workload == "normal"
        assert TABLE_EXPERIMENTS["table4"].dims == 3

    def test_keys_cached_and_unique(self):
        exp = TABLE_EXPERIMENTS["table2"]
        a = exp.keys(500)
        b = exp.keys(500)
        assert a is b
        assert len(set(a)) == len(a)

    def test_run_table_cell_small(self):
        metrics = run_table_cell(TABLE_EXPERIMENTS["table2"], "MDEH", 8, n=800)
        assert metrics.successful_search_reads == 2.0
        assert metrics.directory_size >= 1

    def test_growth_series_small(self):
        metrics, series = growth_series(
            TABLE_EXPERIMENTS["table2"], "BMEHTree", checkpoints=5, n=800
        )
        assert len(series.checkpoints) >= 5
        assert series.directory_sizes == sorted(series.directory_sizes)

    def test_unknown_workload(self):
        with pytest.raises(ValueError):
            TableExperiment("x", "pareto", 2).keys(10)


class TestReporting:
    def run_cells(self, n=1200):
        exp = TABLE_EXPERIMENTS["table2"]
        return {
            (scheme, 8): run_table_cell(exp, scheme, 8, n=n)
            for scheme in ("MDEH", "MEHTree", "BMEHTree")
        }

    def test_format_table_mentions_all_measures(self):
        measured = self.run_cells()
        text = format_table("T", measured, PAPER_TABLES["table2"])
        for token in ("λ", "ρ", "α", "σ", "measured/paper", "MDEH"):
            assert token in text

    def test_format_table_handles_missing_cells(self):
        text = format_table("T", {}, PAPER_TABLES["table2"])
        assert "--" in text

    def test_shape_assertions_small_scale_pass(self):
        measured = self.run_cells()
        assert shape_assertions("table2", measured) == []

    def test_shape_assertions_flag_bad_lambda(self):
        measured = self.run_cells()
        broken = dict(measured)
        cell = broken[("MDEH", 8)]
        cell.successful_search_reads = 3.5
        failures = shape_assertions("table2", broken)
        assert any("MDEH λ" in f for f in failures)

    def test_format_series(self):
        series = [GrowthSeries("A", [10, 20], [1, 2]),
                  GrowthSeries("B", [10, 20], [3, 4])]
        text = format_series("S", series)
        assert "A" in text and "B" in text and "20" in text
