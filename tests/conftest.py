"""Shared fixtures: schemes under test and small deterministic key sets."""

from __future__ import annotations

import random

import pytest

from repro import (
    MDEH,
    MEHTree,
    BMEHTree,
    BalancedBinaryTrie,
    GridFile,
    KDBTree,
    ZOrderIndex,
)

#: Every multidimensional scheme, with any non-default options.
ALL_SCHEMES = [
    pytest.param((MDEH, {}), id="mdeh"),
    pytest.param((MEHTree, {}), id="meh"),
    pytest.param((BMEHTree, {}), id="bmeh"),
    pytest.param((BMEHTree, {"node_policy": "per_dim"}), id="bmeh-perdim"),
    pytest.param((BalancedBinaryTrie, {}), id="quadtrie"),
    pytest.param((GridFile, {}), id="gridfile"),
    pytest.param((KDBTree, {}), id="kdb"),
    pytest.param((ZOrderIndex, {}), id="zorder"),
]

#: The three paper schemes only (comparison tests).
PAPER_SCHEMES = [
    pytest.param((MDEH, {}), id="mdeh"),
    pytest.param((MEHTree, {}), id="meh"),
    pytest.param((BMEHTree, {}), id="bmeh"),
]


@pytest.fixture(params=ALL_SCHEMES)
def scheme(request):
    """(class, options) pairs covering every index variant."""
    return request.param


def make_index(cls, options, dims=2, b=4, widths=8):
    return cls(dims=dims, page_capacity=b, widths=widths, **options)


@pytest.fixture
def small_keys():
    """300 unique deterministic 2-d keys in an 8-bit domain."""
    rng = random.Random(2024)
    seen = {}
    while len(seen) < 300:
        seen[(rng.randrange(256), rng.randrange(256))] = None
    return list(seen)


@pytest.fixture
def built(scheme, small_keys):
    """An index of each variant loaded with ``small_keys``."""
    cls, options = scheme
    index = make_index(cls, options)
    for i, key in enumerate(small_keys):
        index.insert(key, i)
    return index, dict((k, i) for i, k in enumerate(small_keys))
