"""Read replicas and hot failover.

Covers the PR 10 replication surface end to end against real worker
and replica processes:

* a follower bootstraps from the primary's checkpoint stream, tails
  committed WAL batches, serves reads through the router (lag-aware),
  and rejects mutations with a structured ``read-only`` error;
* the router retries **idempotent reads** exactly once on an alternate
  link when a connection dies mid-request — and never retries a
  mutation (the satellite regression for the silent read-hang on a
  killed replica link);
* promotion: kill-the-primary → promote-most-caught-up-follower, via
  the ``MIGRATE promote`` verb, the auto-failover watchdog, and with
  no follower at all (the dead primary's durable WAL alone);
* the chaos sweep: a failure injected after **every** phase of the
  promotion state machine must leave a retry that converges with zero
  acked-write loss, a sanitizer-clean promoted index, and no torn
  values among unknown-outcome in-flights.
"""

import asyncio
import random

import pytest

from repro.errors import ShardDownError
from repro.sanitize import check_structure
from repro.server import QueryClient, ShardManager
from repro.server.client import RemoteError
from repro.server.replica import (
    PROMOTION_PHASES,
    ReplicaManager,
    promote,
)
from repro.server.router import ShardRouter
from repro.storage import recover_index

DIMS = 2
WIDTH = 16


def run(coro):
    return asyncio.run(coro)


def seeded_keys(n, seed=11):
    rng = random.Random(seed)
    seen = set()
    while len(seen) < n:
        seen.add((rng.randrange(1 << WIDTH), rng.randrange(1 << WIDTH)))
    return sorted(seen)


def make_manager(tmp_path, shards=2, sample=None):
    return ShardManager(
        shards,
        dims=DIMS,
        widths=WIDTH,
        page_capacity=8,
        workdir=tmp_path,
        sample_keys=sample,
    )


async def _replica_stats(spec):
    client = await QueryClient.connect(spec.host, spec.port, negotiate=True)
    try:
        return await client.stats()
    finally:
        await client.close()


async def _wait_caught_up(replicas, deadline=15.0):
    """Block until every live follower's lag is zero.

    Replica reads are bounded-lag, **not** read-your-writes: an oracle
    readback straight after a write burst must first wait for the tails
    to land or it would (correctly) be served slightly-stale state.
    The lag a follower reports is relative to its *last-known* primary
    LSN, so a single zero reading can predate the burst — require two
    zero readings separated by several tail-poll intervals, which
    guarantees a post-burst poll happened in between.
    """
    loop = asyncio.get_running_loop()
    end = loop.time() + deadline
    for shard, specs in replicas.all_specs().items():
        for spec in specs:
            zeros = 0
            while zeros < 2:
                stats = await _replica_stats(spec)
                lag = stats["replica"]["lag"]
                if lag <= 0:
                    zeros += 1
                else:
                    zeros = 0
                if loop.time() > end:
                    raise AssertionError(
                        f"replica {shard}/{spec.replica} stuck at lag {lag}"
                    )
                await asyncio.sleep(0.1)


async def _oracle_readback(client, values, maybe=None):
    """Every acked write reads back exactly once with its acked value;
    ``maybe`` (unknown-outcome in-flights) may appear, but only with
    the value that was written — never torn, never duplicated."""
    maybe = maybe or {}
    every = sorted(values)
    assert await client.search_many(every) == [values[key] for key in every]
    top = (1 << WIDTH) - 1
    ranged = await client.range_search((0, 0), (top, top))
    got = {}
    for key, value in ranged:
        got[tuple(key)] = value
    assert len(got) == len(ranged), "a key was returned twice"
    for key, value in got.items():
        expected = values.get(key, maybe.get(key))
        assert expected == value, (
            f"key {key} served as {value!r}, expected {expected!r}"
        )
    assert set(values) <= set(got)


# ---------------------------------------------------------------------------
# replica serving


class TestReplicaServing:
    def test_followers_serve_reads_and_reject_writes(self, tmp_path):
        keys = seeded_keys(48, seed=7)
        values = {key: i for i, key in enumerate(keys)}
        manager = make_manager(tmp_path, shards=2, sample=keys)
        manager.start()
        replicas = ReplicaManager(manager, 1, poll_interval=0.02)
        replicas.start()
        try:

            async def scenario():
                async with ShardRouter(manager, replicas=replicas) as router:
                    host, port = router.address
                    client = await QueryClient.connect(
                        host, port, negotiate=True
                    )
                    async with client:
                        await client.insert_many(
                            [(key, values[key]) for key in keys]
                        )
                        await _wait_caught_up(replicas)
                        await _oracle_readback(client, values)
                        stats = await client.stats()
                        metrics = stats["server"]
                        assert metrics["replica_reads"] > 0
                        assert metrics["read_retries"] == 0
                        topo = await client.topology()
                        assert len(topo["replicas"]) == 2

                    # the follower itself: replica-role stats, read-only
                    spec = replicas.specs_for(0)[0]
                    stats = await _replica_stats(spec)
                    assert stats["role"] == "replica"
                    replica = stats["replica"]
                    assert replica["shard"] == 0
                    assert replica["applied_lsn"] >= 0
                    assert replica["primary_down"] is False
                    direct = await QueryClient.connect(
                        spec.host, spec.port, negotiate=True
                    )
                    async with direct:
                        with pytest.raises(RemoteError) as err:
                            await direct.insert((1, 2), "nope")
                        assert err.value.code == "read-only"

            run(scenario())
        finally:
            replicas.stop()
            manager.stop()


# ---------------------------------------------------------------------------
# the idempotent-read retry (satellite regression)


class TestIdempotentReadRetry:
    def test_reads_retry_once_on_a_killed_link_writes_never(self, tmp_path):
        keys = seeded_keys(32, seed=13)
        values = {key: i for i, key in enumerate(keys)}
        manager = make_manager(tmp_path, shards=1)
        manager.start()
        replicas = ReplicaManager(manager, 1, poll_interval=0.02)
        replicas.start()
        try:

            async def scenario():
                async with ShardRouter(manager, replicas=replicas) as router:
                    host, port = router.address
                    client = await QueryClient.connect(
                        host, port, negotiate=True
                    )
                    async with client:
                        await client.insert_many(
                            [(key, values[key]) for key in keys]
                        )
                        await _wait_caught_up(replicas)
                        for key in keys[:8]:
                            assert await client.search(key) == values[key]
                        before = await client.stats()
                        assert before["server"]["replica_reads"] > 0

                        # SIGKILL the follower with its link still
                        # installed: the next preferred read dies
                        # mid-request and must be retried — once, on
                        # the primary — not hung and not surfaced.
                        replicas.kill(0, 0)
                        for key in keys:
                            assert await client.search(key) == values[key]
                        ranged = await client.range_search(
                            (0, 0), ((1 << WIDTH) - 1, (1 << WIDTH) - 1)
                        )
                        assert len(ranged) == len(keys)
                        retried = router.metrics.read_retries
                        assert retried >= 1

                        # mutations get no retry anywhere: a dead
                        # primary surfaces as shard-down, and the retry
                        # counter does not move (read it off the router
                        # directly — a STATS round-trip would itself be
                        # a retrying read against the dead primary).
                        manager.kill(0)
                        with pytest.raises(ShardDownError):
                            await asyncio.wait_for(
                                client.insert((1, 1), "never"), timeout=10.0
                            )
                        assert router.metrics.read_retries == retried

            run(scenario())
        finally:
            replicas.stop()
            manager.stop()

    def test_read_of_dead_primary_without_spares_raises(self, tmp_path):
        keys = seeded_keys(8, seed=17)
        manager = make_manager(tmp_path, shards=1)
        manager.start()
        try:

            async def scenario():
                async with ShardRouter(manager) as router:
                    host, port = router.address
                    client = await QueryClient.connect(
                        host, port, negotiate=True
                    )
                    async with client:
                        await client.insert_many(
                            [(key, i) for i, key in enumerate(keys)]
                        )
                        manager.kill(0)
                        with pytest.raises(ShardDownError):
                            await asyncio.wait_for(
                                client.search(keys[0]), timeout=10.0
                            )

            run(scenario())
        finally:
            manager.stop()


# ---------------------------------------------------------------------------
# promotion


class TestPromotion:
    def test_promote_verb_over_the_wire(self, tmp_path):
        keys = seeded_keys(40, seed=23)
        values = {key: i for i, key in enumerate(keys)}
        manager = make_manager(tmp_path, shards=1)
        manager.start()
        replicas = ReplicaManager(manager, 1, poll_interval=0.02)
        replicas.start()
        try:

            async def scenario():
                async with ShardRouter(manager, replicas=replicas) as router:
                    host, port = router.address
                    client = await QueryClient.connect(
                        host, port, negotiate=True
                    )
                    async with client:
                        await client.insert_many(
                            [(key, values[key]) for key in keys]
                        )
                        await _wait_caught_up(replicas)
                        manager.kill(0)
                        # the follower keeps serving reads while the
                        # primary is down, before any promotion
                        assert (
                            await client.search(keys[0]) == values[keys[0]]
                        )
                        summary = await client.migrate("promote", shard=0)
                        assert summary["shard"] == 0
                        assert summary["chosen"] is not None
                        assert summary["epoch"] == 2
                        # promoted primary serves everything, and
                        # accepts new writes
                        await client.insert((1, 1), "fresh")
                        values[(1, 1)] = "fresh"
                        await _wait_caught_up(replicas)
                        await _oracle_readback(client, values)
                        stats = await client.stats()
                        assert stats["server"]["promotions"] == 1

            run(scenario())
        finally:
            replicas.stop()
            manager.stop()

    def test_promotion_from_the_primary_wal_alone(self, tmp_path):
        # No follower ever existed: zero acked-write loss must still
        # hold, because an ack implies a durable COMMIT in the dead
        # primary's WAL.
        keys = seeded_keys(40, seed=29)
        values = {key: i for i, key in enumerate(keys)}
        manager = make_manager(tmp_path, shards=1)
        manager.start()
        try:

            async def load():
                async with ShardRouter(manager) as router:
                    host, port = router.address
                    client = await QueryClient.connect(
                        host, port, negotiate=True
                    )
                    async with client:
                        await client.insert_many(
                            [(key, values[key]) for key in keys]
                        )

            run(load())
            manager.kill(0)
            summary = promote(manager, None, 0)
            assert summary["chosen"] is None
            assert summary["chosen_lsn"] == -1
            assert summary["pages"] > 0
            assert manager.is_alive(0)

            async def readback():
                async with ShardRouter(manager) as router:
                    host, port = router.address
                    client = await QueryClient.connect(
                        host, port, negotiate=True
                    )
                    async with client:
                        await _oracle_readback(client, values)

            run(readback())
        finally:
            manager.stop()

    def test_auto_failover_watchdog_promotes(self, tmp_path):
        keys = seeded_keys(24, seed=31)
        values = {key: i for i, key in enumerate(keys)}
        manager = make_manager(tmp_path, shards=1)
        manager.start()
        replicas = ReplicaManager(manager, 1, poll_interval=0.02)
        replicas.start()
        try:

            async def scenario():
                async with ShardRouter(
                    manager,
                    replicas=replicas,
                    auto_failover=True,
                    failover_interval=0.1,
                ) as router:
                    host, port = router.address
                    client = await QueryClient.connect(
                        host, port, negotiate=True
                    )
                    async with client:
                        await client.insert_many(
                            [(key, values[key]) for key in keys]
                        )
                        await _wait_caught_up(replicas)
                        manager.kill(0)
                        deadline = asyncio.get_running_loop().time() + 15.0
                        while router.metrics.promotions < 1:
                            if asyncio.get_running_loop().time() > deadline:
                                raise AssertionError(
                                    "watchdog never promoted"
                                )
                            await asyncio.sleep(0.1)
                        assert manager.is_alive(0)
                        await _wait_caught_up(replicas)
                        await _oracle_readback(client, values)

            run(scenario())
        finally:
            replicas.stop()
            manager.stop()


# ---------------------------------------------------------------------------
# chaos: kill the promotion at every swept phase


class TestChaosFailoverSweep:
    @pytest.mark.parametrize("phase", PROMOTION_PHASES)
    def test_injected_failure_then_retry_converges(self, tmp_path, phase):
        keys = seeded_keys(32, seed=37)
        values = {key: i for i, key in enumerate(keys)}
        maybe = {}
        manager = make_manager(tmp_path, shards=1)
        manager.start()
        replicas = ReplicaManager(manager, 1, poll_interval=0.02)
        replicas.start()
        try:

            async def scenario():
                async with ShardRouter(manager, replicas=replicas) as router:
                    host, port = router.address
                    client = await QueryClient.connect(
                        host, port, negotiate=True
                    )
                    writer = await QueryClient.connect(
                        host, port, negotiate=True
                    )
                    async with client, writer:
                        await client.insert_many(
                            [(key, values[key]) for key in keys]
                        )
                        await _wait_caught_up(replicas)

                        # a write storm straddling the failure: acked
                        # writes join the oracle, failed ones are
                        # unknown-outcome (durable-but-unacked is legal)
                        stop = asyncio.Event()

                        async def storm():
                            i = 0
                            while not stop.is_set():
                                key = (60000 + (i % 5000), 60000)
                                i += 1
                                if key in values or key in maybe:
                                    continue
                                try:
                                    await writer.insert(key, 100000 + i)
                                except ShardDownError:
                                    maybe[key] = 100000 + i
                                    await asyncio.sleep(0.02)
                                else:
                                    values[key] = 100000 + i

                        task = asyncio.create_task(storm())
                        await asyncio.sleep(0.1)
                        manager.kill(0)
                        with pytest.raises(ShardDownError):
                            await router.promote(0, failpoint=phase)
                        # the sabotaged attempt left a retryable state:
                        # the same promotion, un-sabotaged, converges
                        summary = await router.promote(0)
                        assert summary["shard"] == 0
                        assert manager.is_alive(0)
                        # post-promotion writes flow again
                        acked_before = len(values)
                        deadline = asyncio.get_running_loop().time() + 10.0
                        while len(values) <= acked_before:
                            if asyncio.get_running_loop().time() > deadline:
                                raise AssertionError(
                                    "no write acked after promotion"
                                )
                            await asyncio.sleep(0.05)
                        stop.set()
                        await task
                        await _wait_caught_up(replicas)
                        await _oracle_readback(client, values, maybe)

            run(scenario())
        finally:
            replicas.stop()
            manager.stop()

        # offline: the promoted worker's WAL replays into a
        # sanitizer-clean index carrying every acked value exactly
        wal = manager.wal_path(manager.worker_ids[0])
        index = recover_index(wal)
        assert index is not None
        try:
            check_structure(index)
            for key, acked in values.items():
                assert key in index
                assert index.search(key) == acked
            for key, written in maybe.items():
                if key in index:
                    assert index.search(key) == written
        finally:
            index.store.close()
