"""MVCC snapshot reads: version lifecycle and the concurrency property.

The headline property (PR 10): a snapshot scan taken at version ``v``
while a multi-writer storm is mutating the index is **bit-identical**
to a serial scan of the state after exactly the first ``v`` committed
operations.  Commit order is made observable with marker keys: every
writer, inside the same ``latch.write()`` block as its payload
mutation, inserts ``(MARKER, i)`` where ``i`` is the global commit
index — so the markers visible in a snapshot identify precisely which
oplog prefix it must equal.
"""

import random
import shutil
import tempfile
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import KeyCodec, UIntEncoder
from repro.core import MultiKeyFile
from repro.errors import StorageError
from repro.storage import DataPage, FileBackend, PageStore, WALBackend


def page(*records):
    p = DataPage(capacity=max(4, len(records)))
    for key, value in records:
        p.put(key, value)
    return p


def make_store(kind: str, root: str) -> PageStore:
    if kind == "memory":
        return PageStore()
    if kind == "file":
        return PageStore(FileBackend(root + "/pages.db"))
    assert kind == "wal"
    return PageStore(WALBackend(root + "/pages.db"))


BACKENDS = ("memory", "file", "wal")


class TestSnapshotLifecycle:
    def test_snapshot_sees_open_time_state_across_overwrite(self):
        store = PageStore()
        pid = store.allocate(page(((1, 1), "old")))
        with store.snapshot() as snap:
            store.write(pid, page(((1, 1), "new")))
            assert dict(snap.read(pid).items()) == {(1, 1): "old"}
            assert dict(store.read(pid).items()) == {(1, 1): "new"}
            assert store.preserved_versions == 1
        assert store.preserved_versions == 0

    def test_in_place_mutation_is_copied_on_first_access(self):
        # The memory-backend idiom: read the object, mutate it in
        # place, then write(pid) with no object.  The copy must be
        # taken at read time or the snapshot would alias the mutation.
        store = PageStore()
        pid = store.allocate(page(((1, 1), "old")))
        with store.snapshot() as snap:
            obj = store.read(pid)
            obj.put((2, 2), "x")
            store.write(pid)
            assert dict(snap.read(pid).items()) == {(1, 1): "old"}
            assert dict(store.read(pid).items()) == {
                (1, 1): "old",
                (2, 2): "x",
            }

    def test_freed_page_stays_readable_through_snapshot(self):
        store = PageStore()
        pid = store.allocate(page(((7, 7), "doomed")))
        snap = store.snapshot()
        store.free(pid)
        assert pid not in store
        assert dict(snap.read(pid).items()) == {(7, 7): "doomed"}
        snap.close()
        assert store.preserved_versions == 0

    def test_pages_born_after_open_are_invisible(self):
        store = PageStore()
        first = store.allocate(page(((1, 1), "a")))
        with store.snapshot() as snap:
            late = store.allocate(page(((2, 2), "b")))
            assert first in snap
            assert late not in snap
            with pytest.raises(StorageError, match="not part"):
                snap.read(late)

    def test_epochs_pin_distinct_versions(self):
        store = PageStore()
        pid = store.allocate(page(((1, 1), "v0")))
        s0 = store.snapshot()
        store.write(pid, page(((1, 1), "v1")))
        s1 = store.snapshot()
        store.write(pid, page(((1, 1), "v2")))
        assert dict(s0.read(pid).items()) == {(1, 1): "v0"}
        assert dict(s1.read(pid).items()) == {(1, 1): "v1"}
        assert dict(store.read(pid).items()) == {(1, 1): "v2"}
        s0.close()
        assert store.preserved_versions > 0  # s1 still pins v1
        s1.close()
        assert store.preserved_versions == 0
        assert store.open_snapshots == 0

    def test_closed_snapshot_rejects_reads(self):
        store = PageStore()
        pid = store.allocate(page(((1, 1), "a")))
        snap = store.snapshot()
        snap.close()
        snap.close()  # idempotent
        with pytest.raises(StorageError, match="closed"):
            snap.read(pid)

    def test_writer_is_never_blocked_by_snapshot_scan(self):
        # Zero writer blocking is structural: snapshot reads hold no
        # latch, so a writer can take the exclusive side mid-scan.
        store = PageStore()
        pids = [store.allocate(page(((i, i), i))) for i in range(10)]
        snap = store.snapshot()
        acquired = threading.Event()
        release = threading.Event()

        def writer():
            with store.latch.write(timeout=2.0):
                acquired.set()
                release.wait(2.0)

        thread = threading.Thread(target=writer)
        with snap, snap.reading():
            thread.start()
            assert acquired.wait(2.0), "writer timed out behind a snapshot"
            for pid in pids:  # scan proceeds while the latch is held
                assert dict(store.read(pid).items()) == {(pid - pids[0],) * 2: pid - pids[0]}
            release.set()
        thread.join()

    def test_index_scan_under_snapshot_excludes_later_writes(self):
        codec = KeyCodec([UIntEncoder(16), UIntEncoder(16)])
        store = PageStore()
        file = MultiKeyFile(codec, page_capacity=4, store=store)
        for i in range(12):
            file.insert((i, i), i)
        with store.snapshot() as snap:
            for i in range(12, 24):
                file.insert((i, i), i)
            with snap.reading():
                frozen = sorted(value for _, value in file.index.items())
            assert frozen == list(range(12))
        live = sorted(value for _, value in file.items())
        assert live == list(range(24))
        assert store.preserved_versions == 0


# -- the concurrency property ---------------------------------------------

MARKER = 9999  # first key coordinate reserved for commit markers
N_WRITERS = 3
OPS_PER_WRITER = 8
SCANS = 6


def _check_prefix(observed, oplog, initial):
    """Assert ``observed`` equals initial + replay of an oplog prefix."""
    marker_ids = sorted(key[1] for key in observed if key[0] == MARKER)
    k = len(marker_ids)
    # Commit markers are assigned and inserted inside the latch, so a
    # consistent snapshot must contain a gapless prefix of them.
    assert marker_ids == list(range(k)), f"non-prefix markers: {marker_ids}"
    expected = dict(initial)
    for kind, key, value in oplog[:k]:
        if kind == "ins":
            expected[key] = value
        else:
            expected.pop(key)
    for i in range(k):
        expected[(MARKER, i)] = i
    assert sorted(observed.items()) == sorted(expected.items())
    return k


def _run_storm(kind: str, seed: int) -> None:
    root = tempfile.mkdtemp(prefix="mvcc-")
    rng = random.Random(seed)
    codec = KeyCodec([UIntEncoder(16), UIntEncoder(16)])
    store = make_store(kind, root)
    file = MultiKeyFile(codec, page_capacity=4, store=store)
    try:
        initial = {(w, 500): w for w in range(N_WRITERS)}
        for key, value in initial.items():
            file.insert(key, value)

        oplog: list[tuple[str, tuple[int, int], int | None]] = []
        errors: list[BaseException] = []
        plans = [
            [rng.random() < 0.3 for _ in range(OPS_PER_WRITER)]
            for _ in range(N_WRITERS)
        ]
        start = threading.Barrier(N_WRITERS + 1)

        def writer(w: int) -> None:
            live: list[tuple[int, int]] = []
            try:
                start.wait(5.0)
                for j, want_delete in enumerate(plans[w]):
                    # One latched block per logical op: marker + payload
                    # commit atomically with respect to snapshot opens.
                    with store.latch.write():
                        i = len(oplog)
                        file.insert((MARKER, i), i)
                        if want_delete and live:
                            key = live.pop()
                            file.delete(key)
                            oplog.append(("del", key, None))
                        else:
                            key = (w, j)
                            file.insert(key, i)
                            live.append(key)
                            oplog.append(("ins", key, i))
            except BaseException as exc:  # surfaced by the main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(w,))
            for w in range(N_WRITERS)
        ]
        for thread in threads:
            thread.start()
        start.wait(5.0)
        for _ in range(SCANS):
            _check_prefix(dict(file.items()), oplog, initial)
        for thread in threads:
            thread.join()
        assert not errors, errors

        total = _check_prefix(dict(file.items()), oplog, initial)
        assert total == len(oplog) == N_WRITERS * OPS_PER_WRITER
        assert store.open_snapshots == 0
        assert store.preserved_versions == 0
    finally:
        store.close()
        shutil.rmtree(root, ignore_errors=True)


@pytest.mark.parametrize("kind", BACKENDS)
@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(seed=st.integers(0, 2**32 - 1))
def test_snapshot_scan_equals_serial_replay(kind, seed):
    """Snapshot at version v == serial replay of the first v ops."""
    _run_storm(kind, seed)
