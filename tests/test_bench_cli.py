"""The ``repro bench`` baseline/regression workflow (small-scale)."""

import json

import pytest

from repro.cli import main
from repro.bench.regression import (
    BenchCell,
    compare_with_baseline,
    load_baseline,
    pool_efficiency_failures,
    run_cell,
    write_baseline,
)

N = 400  # keys per cell: seconds, not minutes


@pytest.fixture(scope="module")
def baseline_path(tmp_path_factory):
    """One full bench run shared by the whole module."""
    path = tmp_path_factory.mktemp("bench") / "BENCH_test.json"
    code = main(["bench", "--n", str(N), "--out", str(path)])
    assert code == 0
    return path


class TestBenchRun:
    def test_baseline_file_shape(self, baseline_path):
        data = json.loads(baseline_path.read_text())
        assert data["version"] == 1
        assert data["n"] == N
        cells = {
            (r["experiment"], r["scheme"], r["backend"]): r
            for r in data["results"]
        }
        assert ("table2", "BMEHTree", "file") in cells
        assert ("table2", "BMEHTree", "file+pool") in cells
        modes = {r.get("mode", "single") for r in data["results"]}
        assert modes == {
            "single", "batched", "rangepar", "served", "sharded",
            "migration", "replication",
        }
        for result in data["results"]:
            m = result["metrics"]
            mode = result.get("mode", "single")
            if mode == "batched":
                assert 0 < m["batched_logical_reads"] < m["single_logical_reads"]
                assert m["read_saving"] > 0
            elif mode == "rangepar":
                assert m["rangepar_mismatches"] == 0
                assert m["rangepar_records"] > 0
            elif mode == "served":
                assert m["served_mismatches"] == 0
                assert 0 < m["served_commits"] < m["served_writes"]
            elif mode == "sharded":
                from repro.bench.sharded import SCALING_SMOKE_FLOOR

                # The full 2.5x floor is gated at the committed n=2000
                # scale; this N=400 smoke run only has to prove the
                # partition balances (see SCALING_FULL_N).
                assert m["sharded_mismatches"] == 0
                assert m["sharded_commits_per_write_max"] < 1.0
                assert m["sharded_write_scaling"] >= SCALING_SMOKE_FLOOR
                assert m["sharded_read_scaling"] >= SCALING_SMOKE_FLOOR
            elif mode == "migration":
                assert m["migration_loss"] == 0
                assert m["migration_write_failures"] == 0
                assert m["migration_count"] >= 2
                assert m["migration_epoch_bumps"] >= 2
                assert m["migration_moved_keys"] > 0
            elif mode == "replication":
                from repro.bench.replication import READ_SCALING_SMOKE_FLOOR

                # The full 1.8x floor is gated at the committed n=2000
                # scale (see READ_SCALING_FULL_N); the absolute gates
                # hold at any n.
                assert m["replication_mismatches"] == 0
                assert m["replication_latch_timeouts"] == 0
                assert m["replication_read_scaling"] >= READ_SCALING_SMOKE_FLOOR
                assert m["replication_base_replica_reads"] > 0
                assert m["replication_scaled_replica_reads"] > 0
            else:
                assert m["logical_reads"] > 0 and m["logical_writes"] > 0
                assert m["sigma"] > 0
                assert result["probe_mix"]["candidates"] == N
                assert result["probe_mix"]["uniform"] == 0

    def test_pool_beats_raw_file_backend(self, baseline_path):
        """The acceptance claim: strictly fewer backend I/O calls with
        the pool, and a reported hit rate."""
        data = json.loads(baseline_path.read_text())
        cells = {r["backend"]: r for r in data["results"]
                 if (r["experiment"], r["scheme"]) == ("table2", "BMEHTree")
                 and r.get("mode", "single") == "single"}
        raw, pooled = cells["file"]["metrics"], cells["file+pool"]["metrics"]
        assert (pooled["backend_reads"] + pooled["backend_writes"]
                < raw["backend_reads"] + raw["backend_writes"])
        assert pooled["hit_rate"] is not None and pooled["hit_rate"] > 0
        assert raw["hit_rate"] is None
        # The pool never changes the paper's logical accounting.
        assert pooled["lambda"] == raw["lambda"]
        assert pooled["logical_reads"] == raw["logical_reads"]
        assert pooled["sigma"] == raw["sigma"]

    def test_growth_series_ends_at_n(self, baseline_path):
        data = json.loads(baseline_path.read_text())
        figures = [r for r in data["results"] if r["kind"] == "figure"]
        assert figures
        for result in figures:
            assert result["series"]["checkpoints"][-1] == result["n"]

    def test_compare_against_self_passes(self, baseline_path, capsys):
        assert main(["bench", "--compare", str(baseline_path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_compare_flags_regressions(self, baseline_path, tmp_path):
        """A baseline that promises better numbers than the code delivers
        must fail the gate."""
        data = json.loads(baseline_path.read_text())
        cell = data["results"][0]["metrics"]
        cell["logical_reads"] = int(cell["logical_reads"] * 0.5)
        cell["rho"] = cell["rho"] * 0.5
        tampered = tmp_path / "BENCH_tampered.json"
        tampered.write_text(json.dumps(data))
        assert main(["bench", "--compare", str(tampered)]) == 1

    def test_compare_tolerance_loosens_the_gate(self, baseline_path, tmp_path):
        data = json.loads(baseline_path.read_text())
        cell = data["results"][0]["metrics"]
        cell["logical_reads"] = int(cell["logical_reads"] * 0.98)
        nearly = tmp_path / "BENCH_nearly.json"
        nearly.write_text(json.dumps(data))
        assert main(["bench", "--compare", str(nearly), "--tolerance",
                     "0.10"]) == 0
        assert main(["bench", "--compare", str(nearly), "--tolerance",
                     "0.001"]) == 1


class TestRegressionHelpers:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            run_cell(BenchCell("table2", "BMEHTree", backend="tape"), n=50)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="experiment"):
            run_cell(BenchCell("table9", "BMEHTree"), n=50)

    def test_version_gate(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps({"version": 99, "results": []}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(str(bad))

    def test_pool_efficiency_failure_detected(self):
        def fake(backend, reads, writes):
            return {
                "experiment": "table2", "scheme": "X", "b": 8,
                "backend": backend,
                "metrics": {"backend_reads": reads, "backend_writes": writes},
            }

        ok = [fake("file", 100, 50), fake("file+pool", 10, 5)]
        assert pool_efficiency_failures(ok) == []
        inert = [fake("file", 100, 50), fake("file+pool", 100, 50)]
        assert len(pool_efficiency_failures(inert)) == 1

    def test_write_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "nested" / "BENCH_x.json"
        result = run_cell(BenchCell("table2", "BMEHTree"), n=120)
        write_baseline(str(path), [result], n=120)
        loaded = load_baseline(str(path))
        assert loaded["results"][0]["metrics"] == result["metrics"]

    def test_compare_reports_series_truncation(self, monkeypatch):
        """A re-run whose growth series drops the terminal (n, σ) point
        (the old dropped-terminal bug) is caught by the gate."""
        import repro.bench.regression as regression

        result = run_cell(BenchCell("fig6", "BMEHTree"), n=130)
        truncated = json.loads(json.dumps(result))
        truncated["series"]["checkpoints"].pop()
        truncated["series"]["sigma"].pop()
        monkeypatch.setattr(
            regression, "run_cell", lambda *a, **k: truncated
        )
        baseline = {
            "version": 1, "n": result["n"], "pool_capacity": 256,
            "page_size": 8192, "results": [result],
        }
        failures, _ = compare_with_baseline(baseline, tolerance=0.5)
        assert any("terminal checkpoint" in f for f in failures)


class TestBinarySpeedupGate:
    @staticmethod
    def served(write_ops, read_ops, n=2000):
        return {
            "experiment": "table2", "scheme": "BMEHTree", "b": 8,
            "backend": "file+wal", "mode": "served", "n": n,
            "metrics": {
                "served_write_ops_per_s": write_ops,
                "served_read_ops_per_s": read_ops,
            },
        }

    def reference(self):
        return {"results": [self.served(2000.0, 2100.0)]}

    def test_fast_enough_passes(self):
        from repro.bench.regression import binary_speedup_failures

        current = [self.served(10_500.0, 11_000.0)]
        assert binary_speedup_failures(current, self.reference()) == []

    def test_slow_direction_flagged(self):
        from repro.bench.regression import binary_speedup_failures

        current = [self.served(10_500.0, 9_000.0)]  # reads miss 5x
        failures = binary_speedup_failures(current, self.reference())
        assert len(failures) == 1
        assert "served_read_ops_per_s" in failures[0]

    def test_custom_ratio(self):
        from repro.bench.regression import binary_speedup_failures

        current = [self.served(7_000.0, 7_000.0)]
        assert binary_speedup_failures(
            current, self.reference(), min_ratio=3.0
        ) == []
        assert len(binary_speedup_failures(
            current, self.reference(), min_ratio=5.0
        )) == 2

    def test_no_matching_cell_is_a_failure(self):
        from repro.bench.regression import binary_speedup_failures

        mismatched = [self.served(99_999.0, 99_999.0, n=500)]  # other n
        failures = binary_speedup_failures(mismatched, self.reference())
        assert failures and "matched no served cell" in failures[0]

    def test_cli_flag_gates_the_run(self, baseline_path, tmp_path):
        """--speedup-vs turns an otherwise-green compare into exit 1
        when the reference demands an impossible ratio."""
        reference = tmp_path / "BENCH_ref.json"
        base = load_baseline(str(baseline_path))
        served = [
            r for r in base["results"] if r.get("mode") == "served"
        ]
        assert served, "baseline suite must include a served cell"
        write_baseline(str(reference), served, n=N)
        args = [
            "bench", "--compare", str(baseline_path),
            "--speedup-vs", str(reference),
        ]
        # vs its own numbers the ratio is ~1x: the 5x default must fail
        assert main(args + ["--speedup-min", "5.0"]) == 1
        # and a sub-1x floor must pass
        assert main(args + ["--speedup-min", "0.01"]) == 0
