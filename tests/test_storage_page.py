"""Unit tests for data pages."""

import pytest

from repro.errors import DuplicateKeyError, KeyNotFoundError, StorageError
from repro.storage import DataPage


class TestDataPage:
    def test_capacity_validation(self):
        with pytest.raises(StorageError):
            DataPage(0)

    def test_put_get(self):
        page = DataPage(4)
        page.put((1, 2), "a")
        assert page.get((1, 2)) == "a"
        assert (1, 2) in page
        assert len(page) == 1

    def test_get_missing(self):
        with pytest.raises(KeyNotFoundError):
            DataPage(4).get((9, 9))

    def test_duplicate_rejected(self):
        page = DataPage(4)
        page.put((1,), "a")
        with pytest.raises(DuplicateKeyError):
            page.put((1,), "b")
        assert page.get((1,)) == "a"

    def test_replace_flag(self):
        page = DataPage(4)
        page.put((1,), "a")
        page.put((1,), "b", replace=True)
        assert page.get((1,)) == "b"

    def test_overflow_rejected(self):
        page = DataPage(2)
        page.put((1,), None)
        page.put((2,), None)
        assert page.is_full
        with pytest.raises(StorageError):
            page.put((3,), None)

    def test_replace_on_full_page_is_fine(self):
        page = DataPage(1)
        page.put((1,), "a")
        page.put((1,), "b", replace=True)
        assert len(page) == 1

    def test_remove(self):
        page = DataPage(4)
        page.put((1,), "a")
        assert page.remove((1,)) == "a"
        assert (1,) not in page
        with pytest.raises(KeyNotFoundError):
            page.remove((1,))

    def test_take_all_drains(self):
        page = DataPage(4)
        page.put((1,), "a")
        page.put((2,), "b")
        drained = page.take_all()
        assert drained == {(1,): "a", (2,): "b"}
        assert len(page) == 0

    def test_items_and_keys(self):
        page = DataPage(4)
        page.put((1,), "a")
        page.put((2,), "b")
        assert dict(page.items()) == {(1,): "a", (2,): "b"}
        assert sorted(page.keys()) == [(1,), (2,)]
