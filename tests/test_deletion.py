"""Deletion (§4.2): reversal of the insertion process, on every scheme."""

import random

import pytest

from repro.errors import KeyNotFoundError
from tests.conftest import make_index


class TestDeletion:
    def test_delete_returns_value(self, built):
        index, model = built
        key = next(iter(model))
        assert index.delete(key) == model[key]
        assert key not in index
        assert len(index) == len(model) - 1

    def test_delete_missing_raises(self, built):
        index, model = built
        missing = next(
            k for k in ((x, y) for x in range(256) for y in range(256))
            if k not in model
        )
        with pytest.raises(KeyNotFoundError):
            index.delete(missing)
        assert len(index) == len(model)

    def test_delete_twice_raises(self, built):
        index, model = built
        key = next(iter(model))
        index.delete(key)
        with pytest.raises(KeyNotFoundError):
            index.delete(key)

    def test_delete_all_empties_index(self, built):
        index, model = built
        for key in model:
            index.delete(key)
        index.check_invariants()
        assert len(index) == 0
        assert index.data_page_count == 0
        assert list(index.items()) == []

    def test_empty_pages_dropped_immediately(self, scheme):
        """§2.1's selling point of directory-resident local depths."""
        cls, options = scheme
        index = make_index(cls, options, b=4)
        index.insert((1, 1))
        assert index.data_page_count == 1
        index.delete((1, 1))
        assert index.data_page_count == 0

    def test_reinsert_after_delete(self, built):
        index, model = built
        keys = list(model)[:40]
        for key in keys:
            index.delete(key)
        for key in keys:
            index.insert(key, "back")
        index.check_invariants()
        for key in keys:
            assert index.search(key) == "back"

    def test_directory_shrinks_after_mass_deletion(self, scheme, small_keys):
        cls, options = scheme
        index = make_index(cls, options, b=2)
        for key in small_keys:
            index.insert(key)
        peak = index.directory_size
        for key in small_keys:
            index.delete(key)
        assert index.directory_size <= peak
        index.check_invariants()

    def test_random_churn_model_equivalence(self, scheme):
        cls, options = scheme
        index = make_index(cls, options, b=2)
        rng = random.Random(8)
        model = {}
        for step in range(500):
            if model and rng.random() < 0.45:
                key = rng.choice(list(model))
                assert index.delete(key) == model.pop(key)
            else:
                key = (rng.randrange(256), rng.randrange(256))
                if key in model:
                    continue
                index.insert(key, step)
                model[key] = step
        index.check_invariants()
        assert dict(index.items()) == model
        for key, value in model.items():
            assert index.search(key) == value

    def test_delete_accounting_includes_writes(self, built):
        index, model = built
        stats = index.store.stats
        key = next(iter(model))
        before = stats.snapshot()
        index.delete(key)
        delta = stats.delta(before)
        assert delta.reads >= 1
        assert delta.writes >= 1
