"""Tests for directory nodes (bounded extendible arrays)."""

import pytest

from repro.core.directory import DirEntry
from repro.core.node import Node


class TestNode:
    def test_capacity_is_two_to_phi(self):
        node = Node(2, (3, 3), level=1)
        assert node.phi == 6
        assert node.capacity == 64

    def test_level_validation(self):
        with pytest.raises(ValueError):
            Node(2, (3, 3), level=0)

    def test_xi_arity_validation(self):
        with pytest.raises(ValueError):
            Node(2, (3,), level=1)

    def test_can_grow_total_until_full(self):
        node = Node(2, (1, 1), level=1)  # capacity 4
        assert node.can_grow_total()
        node.array.grow(0)
        assert node.can_grow_total()
        node.array.grow(1)
        assert not node.can_grow_total()

    def test_can_grow_per_dim_respects_xi(self):
        node = Node(2, (2, 1), level=1)  # capacity 8
        node.array.grow(1)
        assert not node.can_grow(1, "per_dim")  # axis 1 hit xi=1
        assert node.can_grow(0, "per_dim")
        assert node.can_grow(1, "total")  # slots still available

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            Node(2, (1, 1), level=1).can_grow(0, "whatever")

    def test_entries_dedupe_shared_objects(self):
        node = Node(2, (2, 2), level=1)
        node.array.grow(0)
        shared = DirEntry([0, 0], 0, None)
        node.array[(0, 0)] = shared
        node.array[(1, 0)] = shared
        assert len(list(node.entries())) == 1

    def test_entries_skip_holes(self):
        node = Node(2, (2, 2), level=1)
        assert list(node.entries()) == []

    def test_depths_follow_array(self):
        node = Node(3, (2, 2, 2), level=1)
        node.array.grow(2)
        assert node.depths == (0, 0, 1)
