"""Tests for directory entries and region geometry."""

import pytest

from repro.core.directory import DirEntry, region_indices, region_size


class TestDirEntry:
    def test_clone_is_deep_enough(self):
        entry = DirEntry([1, 2], 0, 5, True)
        copy = entry.clone()
        copy.h[0] = 9
        assert entry.h == [1, 2]
        assert copy.ptr == 5 and copy.is_node

    def test_repr_mentions_kind(self):
        assert "node" in repr(DirEntry([0], 0, 1, True))
        assert "page" in repr(DirEntry([0], 0, 1, False))


class TestRegionGeometry:
    def test_full_depth_region_is_single_cell(self):
        cells = list(region_indices((2, 2), (1, 3), (2, 2)))
        assert cells == [(1, 3)]

    def test_zero_depth_region_is_whole_grid(self):
        cells = set(region_indices((1, 1), (0, 0), (0, 0)))
        assert cells == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_partial_depth(self):
        # depths (2,1), region fixes 1 bit on axis 0, 0 bits on axis 1.
        cells = set(region_indices((2, 1), (2, 0), (1, 0)))
        assert cells == {(2, 0), (2, 1), (3, 0), (3, 1)}

    def test_anchor_anywhere_in_region(self):
        a = set(region_indices((3, 3), (4, 2), (1, 2)))
        b = set(region_indices((3, 3), (7, 3), (1, 2)))
        assert a == b  # both anchors share prefixes (1, 01)

    def test_invalid_depths_rejected(self):
        with pytest.raises(ValueError):
            list(region_indices((1, 1), (0, 0), (2, 0)))

    def test_region_size(self):
        assert region_size((3, 3), (1, 2)) == 2**2 * 2**1
        assert region_size((2,), (2,)) == 1
        assert region_size((4, 4), (0, 0)) == 256

    def test_size_matches_enumeration(self):
        depths, h = (3, 2), (1, 0)
        assert region_size(depths, h) == len(list(region_indices(depths, (0, 0), h)))
