"""Unit + property tests for the order-preserving encoders (ψ)."""

import math
from datetime import datetime, timedelta, timezone

import pytest
from hypothesis import given, strategies as st

from repro.encoding import (
    DatetimeEncoder,
    FloatEncoder,
    IdentityEncoder,
    IntEncoder,
    KeyCodec,
    ScaledFloatEncoder,
    StringEncoder,
    UIntEncoder,
)
from repro.errors import EncodingError, KeyDimensionError


class TestIdentityEncoder:
    def test_passthrough(self):
        enc = IdentityEncoder(8)
        assert enc.encode(200) == 200
        assert enc.decode(200) == 200

    def test_rejects_out_of_range(self):
        enc = IdentityEncoder(8)
        with pytest.raises(EncodingError):
            enc.encode(256)
        with pytest.raises(EncodingError):
            enc.encode(-1)

    def test_rejects_non_int(self):
        with pytest.raises(EncodingError):
            IdentityEncoder(8).encode("7")

    def test_rejects_bool(self):
        with pytest.raises(EncodingError):
            IdentityEncoder(8).encode(True)

    def test_width_validation(self):
        with pytest.raises(EncodingError):
            IdentityEncoder(0)


class TestUIntEncoder:
    def test_max_code(self):
        assert UIntEncoder(4).max_code == 15

    def test_roundtrip(self):
        enc = UIntEncoder(16)
        assert enc.decode(enc.encode(12345)) == 12345

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            UIntEncoder(16).encode(-3)


class TestIntEncoder:
    def test_roundtrip_negative(self):
        enc = IntEncoder(16)
        assert enc.decode(enc.encode(-1234)) == -1234

    def test_range_limits(self):
        enc = IntEncoder(8)
        assert enc.encode(-128) == 0
        assert enc.encode(127) == 255
        with pytest.raises(EncodingError):
            enc.encode(128)
        with pytest.raises(EncodingError):
            enc.encode(-129)

    @given(st.integers(-2**31, 2**31 - 1), st.integers(-2**31, 2**31 - 1))
    def test_order_preserving(self, a, b):
        enc = IntEncoder(32)
        assert (a <= b) == (enc.encode(a) <= enc.encode(b))


class TestFloatEncoder:
    @given(
        st.floats(allow_nan=False, allow_infinity=True),
        st.floats(allow_nan=False, allow_infinity=True),
    )
    def test_order_preserving(self, a, b):
        enc = FloatEncoder()
        if a < b:
            assert enc.encode(a) < enc.encode(b)
        elif a > b:
            assert enc.encode(a) > enc.encode(b)

    @given(st.floats(allow_nan=False, allow_infinity=True))
    def test_roundtrip(self, x):
        enc = FloatEncoder()
        back = enc.decode(enc.encode(x))
        assert back == x or (x == 0.0 and back == 0.0)

    def test_nan_rejected(self):
        with pytest.raises(EncodingError):
            FloatEncoder().encode(float("nan"))

    def test_width_is_64(self):
        assert FloatEncoder().width == 64


class TestScaledFloatEncoder:
    def test_bounds(self):
        enc = ScaledFloatEncoder(-90.0, 90.0, width=16)
        assert enc.encode(-90.0) == 0
        assert enc.encode(90.0) == enc.max_code

    def test_out_of_domain(self):
        enc = ScaledFloatEncoder(0.0, 1.0)
        with pytest.raises(EncodingError):
            enc.encode(1.5)
        with pytest.raises(EncodingError):
            enc.encode(float("nan"))

    def test_empty_domain_rejected(self):
        with pytest.raises(EncodingError):
            ScaledFloatEncoder(2.0, 2.0)

    @given(
        st.floats(0.0, 1000.0, allow_nan=False),
        st.floats(0.0, 1000.0, allow_nan=False),
    )
    def test_order_preserving(self, a, b):
        enc = ScaledFloatEncoder(0.0, 1000.0, width=32)
        if a <= b:
            assert enc.encode(a) <= enc.encode(b)

    def test_decode_returns_bucket_floor(self):
        enc = ScaledFloatEncoder(0.0, 256.0, width=8)
        assert enc.decode(enc.encode(100.3)) == pytest.approx(100.0)


class TestStringEncoder:
    def test_roundtrip_short(self):
        enc = StringEncoder(64)
        assert enc.decode(enc.encode("otoo")) == "otoo"

    def test_truncation_collides(self):
        enc = StringEncoder(32)
        assert enc.encode("abcdX") == enc.encode("abcdY")

    def test_width_must_be_byte_aligned(self):
        with pytest.raises(EncodingError):
            StringEncoder(20)

    def test_rejects_non_string(self):
        with pytest.raises(EncodingError):
            StringEncoder(32).encode(42)

    @given(st.text(max_size=12), st.text(max_size=12))
    def test_order_preserving_on_ascii_range(self, a, b):
        enc = StringEncoder(128)
        ea, eb = enc.encode(a), enc.encode(b)
        ba, bb = a.encode("utf-8")[:16], b.encode("utf-8")[:16]
        if ba < bb:
            assert ea <= eb
        elif ba > bb:
            assert ea >= eb


class TestDatetimeEncoder:
    def test_roundtrip(self):
        enc = DatetimeEncoder()
        moment = datetime(1986, 3, 24, 12, 30, tzinfo=timezone.utc)
        assert enc.decode(enc.encode(moment)) == moment

    def test_naive_treated_as_utc(self):
        enc = DatetimeEncoder()
        naive = datetime(2000, 1, 1)
        aware = datetime(2000, 1, 1, tzinfo=timezone.utc)
        assert enc.encode(naive) == enc.encode(aware)

    def test_order_preserving(self):
        enc = DatetimeEncoder()
        a = datetime(1990, 6, 1, tzinfo=timezone.utc)
        assert enc.encode(a) < enc.encode(a + timedelta(seconds=1))

    def test_out_of_window(self):
        with pytest.raises(EncodingError):
            DatetimeEncoder(32).encode(datetime(2200, 1, 1, tzinfo=timezone.utc))

    def test_rejects_non_datetime(self):
        with pytest.raises(EncodingError):
            DatetimeEncoder().encode("1986-03-24")


class TestKeyCodec:
    def codec(self):
        return KeyCodec([UIntEncoder(16), IntEncoder(16)])

    def test_dimensions_and_widths(self):
        codec = self.codec()
        assert codec.dimensions == 2
        assert codec.widths == (16, 16)

    def test_encode_decode(self):
        codec = self.codec()
        codes = codec.encode((500, -3))
        assert codec.decode(codes) == (500, -3)

    def test_arity_checked(self):
        with pytest.raises(KeyDimensionError):
            self.codec().encode((1,))
        with pytest.raises(KeyDimensionError):
            self.codec().decode((1, 2, 3))

    def test_requires_an_encoder(self):
        with pytest.raises(EncodingError):
            KeyCodec([])

    def test_encode_range_full_open(self):
        codec = self.codec()
        lows, highs = codec.encode_range((None, None), (None, None))
        assert lows == (0, 0)
        assert highs == (65535, 65535)

    def test_encode_range_partial(self):
        codec = self.codec()
        lows, highs = codec.encode_range((10, None), (20, None))
        assert lows[0] == 10 and highs[0] == 20
        assert lows[1] == 0 and highs[1] == 65535

    def test_encode_range_arity(self):
        with pytest.raises(KeyDimensionError):
            self.codec().encode_range((1,), (2,))
