"""Key-stream generators: domains, determinism and distribution shape."""

import numpy as np
import pytest

from repro.workloads import (
    DOMAIN_MAX,
    adversarial_common_prefix_keys,
    clustered_keys,
    noise_burst_keys,
    normal_keys,
    uniform_keys,
    unique,
    zipf_grid_keys,
)
from repro.workloads.generators import interleave


def in_domain(keys, domain=DOMAIN_MAX):
    return all(0 <= c < domain for key in keys for c in key)


class TestUniform:
    def test_count_and_dims(self):
        keys = uniform_keys(500, dims=3)
        assert len(keys) == 500
        assert all(len(k) == 3 for k in keys)

    def test_domain(self):
        assert in_domain(uniform_keys(500))

    def test_deterministic_per_seed(self):
        assert uniform_keys(100, seed=5) == uniform_keys(100, seed=5)
        assert uniform_keys(100, seed=5) != uniform_keys(100, seed=6)

    def test_spread_is_roughly_uniform(self):
        keys = uniform_keys(4000)
        first = np.array([k[0] for k in keys], dtype=float)
        assert abs(first.mean() / DOMAIN_MAX - 0.5) < 0.05


class TestNormal:
    def test_domain_truncation(self):
        assert in_domain(normal_keys(2000))

    def test_concentration(self):
        keys = normal_keys(4000)
        first = np.array([k[0] for k in keys], dtype=float)
        # ~68% within one default sd of the mean.
        sd = DOMAIN_MAX / 12
        within = np.mean(np.abs(first - DOMAIN_MAX / 2) <= sd)
        assert 0.6 < within < 0.76

    def test_custom_parameters(self):
        keys = normal_keys(500, mean=1000.0, spread=10.0, domain=4096)
        first = np.array([k[0] for k in keys], dtype=float)
        assert 900 < first.mean() < 1100

    def test_deterministic(self):
        assert normal_keys(100, seed=1) == normal_keys(100, seed=1)


class TestClustered:
    def test_domain(self):
        assert in_domain(clustered_keys(1000))

    def test_keys_cluster(self):
        keys = clustered_keys(2000, clusters=4, cluster_radius=DOMAIN_MAX / 1000)
        first = np.sort(np.array([k[0] for k in keys], dtype=float))
        gaps = np.diff(first)
        # A few giant inter-cluster gaps dominate the span.
        assert gaps.max() > DOMAIN_MAX / 20


class TestNoiseBursts:
    def test_burst_structure(self):
        keys = noise_burst_keys(64, burst=32, low_bits=12, seed=3)
        first_block = keys[:32]
        prefixes = {k[0] >> 12 for k in first_block}
        assert len(prefixes) == 1  # whole burst shares the high bits

    def test_length(self):
        assert len(noise_burst_keys(100, burst=32)) == 100


class TestZipf:
    def test_domain(self):
        assert in_domain(zipf_grid_keys(1000))

    def test_skew(self):
        keys = zipf_grid_keys(4000, grid_bits=6, exponent=1.4)
        cells = np.array([k[0] >> (31 - 6) for k in keys])
        _, counts = np.unique(cells, return_counts=True)
        assert counts.max() > 6 * counts.mean()


class TestAdversarial:
    def test_common_prefix(self):
        keys = adversarial_common_prefix_keys(16, dims=2, width=16)
        prefixes = {(k[0] >> 6, k[1] >> 6) for k in keys}
        assert len(prefixes) == 1

    def test_unique(self):
        keys = adversarial_common_prefix_keys(16, dims=2, width=16)
        assert len(set(keys)) == len(keys)


class TestHelpers:
    def test_unique_preserves_order(self):
        assert unique([(1, 1), (2, 2), (1, 1), (3, 3)]) == [(1, 1), (2, 2), (3, 3)]

    def test_interleave(self):
        merged = list(interleave([(1,), (2,)], [(9,)]))
        assert merged == [(1,), (9,), (2,)]
