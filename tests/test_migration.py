"""Online shard split/merge: zero acked-write loss under live traffic.

Covers the tentpole and its load-bearing bugfixes:

* a live split and merge driven over the wire (``MIGRATE`` admin verbs)
  while 8 concurrent clients keep writing — every acknowledged write
  reads back with its acked value afterwards, point and ranged, and the
  rebalanced cluster survives a graceful restart
  (:class:`~repro.server.shard.ShardManager.from_workdir`);
* the atomic topology persist: a crash injected into ``fsync`` or
  ``replace`` mid-persist leaves the *complete old* ``topology.json``
  (migration rewrites this file on every epoch bump — a torn write
  would brick every future restart);
* exactly-once ``_many`` batches across an epoch bump: the router
  rejects a stale batch *before contacting any shard*, which is the
  invariant that makes the client's transparent retry safe (a rejected
  request has applied nothing, so retrying cannot double-apply);
* the router's topology swap quiesces: ``set_topology`` waits for every
  in-flight scatter-gather to settle before swapping the link table, so
  a long range scan racing a cutover is always served by a single epoch.
"""

import asyncio
import json
import os
import random

import pytest

from repro import KeyCodec, UIntEncoder
from repro.bits import interleave
from repro.errors import CrashError, MigrationError, StaleTopologyError
from repro.server import QueryClient, ShardManager
from repro.server.protocol import Opcode
from repro.server.router import ShardRouter
from repro.server.shard import ShardSpec, TOPOLOGY_FILE

DIMS = 2
WIDTH = 16
WIDTHS = (WIDTH,) * DIMS
Z_MAX = (1 << (DIMS * WIDTH)) - 1


def run(coro):
    return asyncio.run(coro)


def seeded_keys(n, seed=11):
    rng = random.Random(seed)
    seen = set()
    while len(seen) < n:
        seen.add((rng.randrange(1 << WIDTH), rng.randrange(1 << WIDTH)))
    return sorted(seen)


def make_manager(tmp_path=None, shards=2, sample=None, **kwargs):
    return ShardManager(
        shards,
        dims=DIMS,
        widths=WIDTH,
        page_capacity=8,
        workdir=tmp_path,
        sample_keys=sample,
        **kwargs,
    )


def make_codec():
    return KeyCodec([UIntEncoder(WIDTH) for _ in range(DIMS)])


# ---------------------------------------------------------------------------
# the tentpole: live split + merge, oracle-checked, restart-durable


class TestLiveSplitMerge:
    def test_split_and_merge_under_live_writers_lose_nothing(self, tmp_path):
        clients_n = 8
        preload = seeded_keys(160, seed=61)
        live = [k for k in seeded_keys(260, seed=62) if k not in set(preload)]
        live = live[: clients_n * 10]
        values = {key: i for i, key in enumerate(preload + live)}

        manager = make_manager(tmp_path, shards=2, sample=preload)
        manager.start()
        try:

            async def scenario():
                async with ShardRouter(manager, max_inflight=256) as router:
                    host, port = router.address
                    admin = await QueryClient.connect(
                        host, port, negotiate=True
                    )
                    writers = [
                        await QueryClient.connect(host, port, negotiate=True)
                        for _ in range(clients_n)
                    ]
                    try:
                        await admin.insert_many(
                            [(key, values[key]) for key in preload]
                        )
                        shares = [
                            live[c::clients_n] for c in range(clients_n)
                        ]

                        async def one_writer(client, share):
                            for key in share:
                                await client.insert(key, values[key])
                                await asyncio.sleep(0)

                        # The split runs while all 8 writers are live;
                        # the cutover's epoch bump lands mid-stream and
                        # the v2 clients absorb it via transparent retry.
                        write_tasks = [
                            asyncio.ensure_future(one_writer(c, s))
                            for c, s in zip(writers, shares)
                        ]
                        split = await admin.migrate("split")
                        await asyncio.gather(*write_tasks)

                        assert split["action"] == "split"
                        assert split["shards"] == 3
                        assert split["epoch"] == router.epoch == 2
                        status = await admin.migrate("status")
                        assert status["migrations"] == 1
                        assert not status["migrating"]

                        # Zero acked-write loss, point and ranged (the
                        # range catches an orphan double-return the
                        # point reads cannot see).
                        every = sorted(values)
                        assert await admin.search_many(every) == [
                            values[key] for key in every
                        ]
                        ranged = await admin.range_search(
                            (0, 0), ((1 << WIDTH) - 1, (1 << WIDTH) - 1)
                        )
                        assert sorted(
                            (tuple(k), v) for k, v in ranged
                        ) == sorted(values.items())

                        merge = await admin.migrate("merge")
                        assert merge["action"] == "merge"
                        assert merge["shards"] == 2
                        assert merge["epoch"] == router.epoch == 3
                        assert await admin.search_many(every) == [
                            values[key] for key in every
                        ]
                    finally:
                        await admin.close()
                        for client in writers:
                            await client.close()

            run(scenario())
        finally:
            manager.stop()

        # The rebalanced partition is what restarts: the v2 topology
        # (stable worker ids, bumped epoch) plus every worker's WAL.
        topo = json.loads((tmp_path / TOPOLOGY_FILE).read_text())
        assert topo["version"] == 2
        assert topo["shards"] == 2
        assert topo["epoch"] == 3
        second = ShardManager.from_workdir(tmp_path, page_capacity=8)
        assert second.epoch == 3
        second.start()
        try:

            async def readback():
                async with ShardRouter(second) as router:
                    host, port = router.address
                    client = await QueryClient.connect(
                        host, port, negotiate=True
                    )
                    async with client:
                        every = sorted(values)
                        assert await client.search_many(every) == [
                            values[key] for key in every
                        ]

            run(readback())
        finally:
            second.stop()

    def test_explicit_cut_and_bad_cuts_are_validated(self, tmp_path):
        keys = seeded_keys(64, seed=67)
        manager = make_manager(tmp_path, shards=2, sample=keys)
        manager.start()
        try:

            async def scenario():
                async with ShardRouter(manager) as router:
                    host, port = router.address
                    client = await QueryClient.connect(
                        host, port, negotiate=True
                    )
                    async with client:
                        await client.insert_many(
                            [(key, i) for i, key in enumerate(keys)]
                        )
                        spec = manager.specs[0]
                        with pytest.raises(MigrationError):
                            await router.migrator.split(
                                shard=0, cut=spec.z_high + 10
                            )
                        # a failed validation left the cluster unchanged
                        assert router.epoch == 1
                        assert len(manager.specs) == 2
                        cut = (spec.z_low + spec.z_high) // 2 + 1
                        split = await router.migrator.split(shard=0, cut=cut)
                        assert split["cut"] == cut
                        assert manager.boundaries[0] == cut
                        assert await client.search_many(keys) == list(
                            range(len(keys))
                        )

            run(scenario())
        finally:
            manager.stop()


# ---------------------------------------------------------------------------
# satellite: the topology sidecar must persist atomically


class TestAtomicTopologyPersist:
    def _manager_with_topology(self, tmp_path):
        manager = make_manager(tmp_path, shards=2)  # never started
        manager._persist_topology()
        return manager, tmp_path / TOPOLOGY_FILE

    def test_crash_in_fsync_leaves_the_old_file_complete(
        self, tmp_path, monkeypatch
    ):
        manager, path = self._manager_with_topology(tmp_path)
        before = json.loads(path.read_text())

        def torn(fd):
            raise CrashError("power failure during topology fsync")

        monkeypatch.setattr(os, "fsync", torn)
        manager.epoch = 7
        manager.boundaries = [Z_MAX // 3]
        with pytest.raises(CrashError):
            manager._persist_topology()
        # the commit point never happened: the old file is complete and
        # loadable, not a torn half-write
        assert json.loads(path.read_text()) == before

    def test_crash_in_replace_leaves_the_old_file_complete(
        self, tmp_path, monkeypatch
    ):
        manager, path = self._manager_with_topology(tmp_path)
        before = json.loads(path.read_text())

        def torn(src, dst):
            raise CrashError("power failure during topology replace")

        monkeypatch.setattr(os, "replace", torn)
        manager.epoch = 9
        with pytest.raises(CrashError):
            manager._persist_topology()
        assert json.loads(path.read_text()) == before
        # a leftover .tmp from the crash must not confuse a restart
        assert (tmp_path / (TOPOLOGY_FILE + ".tmp")).exists()
        again = make_manager(tmp_path, shards=2)
        assert again.epoch == before["epoch"]
        assert again.boundaries == before["boundaries"]

    def test_v2_topology_round_trips_workers_and_epoch(self, tmp_path):
        manager, path = self._manager_with_topology(tmp_path)
        manager.epoch = 4
        manager.worker_ids = [0, 7]
        manager._persist_topology()
        data = json.loads(path.read_text())
        assert data["version"] == 2
        assert data["workers"] == [0, 7]
        assert data["epoch"] == 4
        again = make_manager(tmp_path, shards=2)
        assert again.worker_ids == [0, 7]
        assert again.epoch == 4
        assert again._next_worker_id == 8


# ---------------------------------------------------------------------------
# satellite: _many batches are exactly-once across an epoch bump


class TestStaleBatchExactlyOnce:
    def test_stale_many_is_rejected_before_any_shard_contact(self):
        # A router over stub links: the unit-level statement of the
        # invariant the full-stack test below relies on.
        contacts = []

        class StubLink:
            def __init__(self, spec):
                self.spec = spec

            async def request(self, opcode, payload=None):
                contacts.append((self.spec.shard, opcode))
                if opcode == Opcode.INSERT_MANY:
                    return {"inserted": len(payload["pairs"])}
                return {"values": [None] * len(payload["keys"])}

            async def close(self):
                pass

        cut = Z_MAX // 2 + 1
        specs = [
            ShardSpec(0, 0, cut - 1, "127.0.0.1", 1, 0),
            ShardSpec(1, cut, Z_MAX, "127.0.0.1", 2, 0),
        ]
        router = ShardRouter(
            specs=specs, boundaries=[cut], codec=make_codec()
        )
        router._links = [StubLink(spec) for spec in specs]
        router._epoch = 5
        pairs = [[[1, 2], "a"], [[60000, 60000], "b"]]  # straddles the cut

        async def scenario():
            # stale epoch: rejected with zero upstream traffic — the
            # acked prefix a retry could double-apply cannot exist
            with pytest.raises(StaleTopologyError) as caught:
                await router.dispatch(
                    Opcode.INSERT_MANY, {"pairs": pairs}, epoch=3
                )
            assert caught.value.epoch == 5
            assert contacts == []
            assert router.metrics.stale_rejections == 1
            # the same batch stamped with the current epoch fans out
            reply = await router.dispatch(
                Opcode.INSERT_MANY, {"pairs": pairs}, epoch=5
            )
            assert reply == {"inserted": 2}
            assert sorted(shard for shard, _ in contacts) == [0, 1]

        run(scenario())

    def test_full_stack_stale_batch_applies_exactly_once(self, tmp_path):
        keys = seeded_keys(40, seed=71)
        manager = make_manager(tmp_path, shards=2, sample=keys)
        manager.start()
        try:

            async def scenario():
                async with ShardRouter(manager) as router:
                    host, port = router.address
                    client = await QueryClient.connect(
                        host, port, negotiate=True
                    )
                    async with client:
                        await client.ping()
                        assert client.epoch == 1
                        # same layout, new epoch: the client's next data
                        # request asserts a stale epoch
                        assert await router.set_topology(
                            manager.specs, manager.boundaries
                        ) == 2
                        # the batch straddles both shards; the stale
                        # first attempt applied nothing, so the retry is
                        # exactly-once: full count, no duplicate-key
                        assert await client.insert_many(
                            [(key, i) for i, key in enumerate(keys)]
                        ) == len(keys)
                        assert router.metrics.stale_rejections >= 1
                        assert client.epoch == 2
                        assert await client.search_many(keys) == list(
                            range(len(keys))
                        )
                        stats = await client.stats()
                        assert stats["keys"] == len(keys)

            run(scenario())
        finally:
            manager.stop()


# ---------------------------------------------------------------------------
# satellite: set_topology quiesces in-flight scatter-gathers


class TestTopologySwapQuiesces:
    def test_cutover_waits_for_inflight_range_scan(self):
        events = []
        cut = Z_MAX // 2 + 1
        specs = [
            ShardSpec(0, 0, cut - 1, "127.0.0.1", 1, 0),
            ShardSpec(1, cut, Z_MAX, "127.0.0.1", 2, 0),
        ]

        class SlowLink:
            def __init__(self, spec):
                self.spec = spec

            async def request(self, opcode, payload=None):
                events.append(("scan-start", self.spec.shard))
                await asyncio.sleep(0.15)
                events.append(("scan-end", self.spec.shard))
                return {"items": [], "count": 0}

            async def close(self):
                events.append(("closed", self.spec.shard))

        router = ShardRouter(
            specs=specs, boundaries=[cut], codec=make_codec()
        )
        router._links = [SlowLink(spec) for spec in specs]

        async def scenario():
            scan = asyncio.ensure_future(
                router.dispatch(
                    Opcode.RANGE,
                    {
                        "lows": [0, 0],
                        "highs": [(1 << WIDTH) - 1, (1 << WIDTH) - 1],
                    },
                    epoch=1,
                )
            )
            # let the scan fan out and block inside its links
            while len([e for e in events if e[0] == "scan-start"]) < 2:
                await asyncio.sleep(0.01)
            assert not scan.done()
            new_epoch = await router.set_topology(specs, [cut])
            events.append(("swap-done", new_epoch))
            reply = await scan
            assert reply == {"items": [], "count": 0}

        run(scenario())
        # every in-flight sub-request finished before the link table was
        # swapped and the old links were closed: the scan was served by
        # exactly one epoch
        scan_ends = [i for i, e in enumerate(events) if e[0] == "scan-end"]
        swap = events.index(("swap-done", 2))
        closes = [i for i, e in enumerate(events) if e[0] == "closed"]
        assert max(scan_ends) < min(closes) <= swap
        assert router.epoch == 2

    def test_queued_request_rechecks_epoch_after_the_swap(self):
        # A data request that queues behind a cutover must be judged
        # against the *new* epoch once it gets the gate (the check is
        # inside the read side).
        cut = Z_MAX // 2 + 1
        specs = [
            ShardSpec(0, 0, cut - 1, "127.0.0.1", 1, 0),
            ShardSpec(1, cut, Z_MAX, "127.0.0.1", 2, 0),
        ]

        class IdleLink:
            def __init__(self, spec):
                self.spec = spec

            async def request(self, opcode, payload=None):
                return {"values": [None]}

            async def close(self):
                pass

        router = ShardRouter(
            specs=specs, boundaries=[cut], codec=make_codec()
        )
        router._links = [IdleLink(spec) for spec in specs]

        async def scenario():
            async with router.fence():
                # queue a request asserting the pre-swap epoch while the
                # fence is held, then install a new topology before
                # releasing it
                queued = asyncio.ensure_future(
                    router.dispatch(
                        Opcode.SEARCH_MANY, {"keys": [[1, 2]]}, epoch=1
                    )
                )
                await asyncio.sleep(0.02)
                assert not queued.done()
                old = router.install_topology(specs, [cut])
            for link in old:
                await link.close()
            with pytest.raises(StaleTopologyError):
                await queued

        run(scenario())
