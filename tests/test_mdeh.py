"""Structural tests specific to the one-level MDEH directory."""

import pytest

from repro import MDEH
from repro.analysis import assert_exact_tiling
from repro.workloads import uniform_keys, unique


def build(keys, b=4, widths=8, **kw):
    index = MDEH(2, b, widths=widths, **kw)
    for i, key in enumerate(keys):
        index.insert(key, i)
    return index


class TestDirectoryStructure:
    def test_directory_size_is_power_of_two_product(self):
        index = build(unique(uniform_keys(400, 2, seed=1, domain=256)))
        h1, h2 = index.global_depths
        assert index.directory_size == 2 ** (h1 + h2)

    def test_global_depths_bound_local_depths(self):
        index = build(unique(uniform_keys(400, 2, seed=2, domain=256)))
        for region in index.leaf_regions():
            for h, H in zip(region.depths, index.global_depths):
                assert h <= H

    def test_cyclic_doubling_keeps_depths_balanced(self):
        index = build(unique(uniform_keys(600, 2, seed=3, domain=256)))
        h1, h2 = index.global_depths
        assert abs(h1 - h2) <= 1

    def test_directory_page_count(self):
        index = build(unique(uniform_keys(400, 2, seed=4, domain=256)),
                      dir_page_entries=16)
        expected = -(-index.directory_size // 16)
        assert index.directory_page_count == expected

    def test_tiling_is_exact(self):
        index = build(unique(uniform_keys(500, 2, seed=5, domain=256)))
        assert_exact_tiling(index)


class TestInsertionCosts:
    def test_search_is_exactly_two_reads(self):
        index = build(unique(uniform_keys(400, 2, seed=6, domain=256)))
        stats = index.store.stats
        keys = [k for k, _ in index.items()][:50]
        before = stats.snapshot()
        for key in keys:
            index.search(key)
        delta = stats.delta(before)
        assert delta.reads == 2 * len(keys)
        assert delta.writes == 0

    def test_unsuccessful_search_at_most_two_reads(self):
        index = build(unique(uniform_keys(400, 2, seed=7, domain=256)))
        from repro.errors import KeyNotFoundError

        stats = index.store.stats
        probes = [(1, 2), (250, 250), (77, 200)]
        probes = [p for p in probes if p not in index]
        before = stats.snapshot()
        for p in probes:
            with pytest.raises(KeyNotFoundError):
                index.search(p)
        delta = stats.delta(before)
        assert delta.reads <= 2 * len(probes)

    def test_element_granularity_only_changes_costs(self):
        keys = unique(uniform_keys(400, 2, seed=8, domain=256))
        fine = build(keys, element_granular_updates=True)
        coarse = build(keys, element_granular_updates=False)
        assert fine.directory_size == coarse.directory_size
        assert fine.data_page_count == coarse.data_page_count
        assert fine.store.stats.accesses >= coarse.store.stats.accesses

    def test_doubling_rewrites_whole_directory(self):
        """Force one doubling and observe a directory-wide write burst."""
        index = MDEH(1, 1, widths=(8,), dir_page_entries=4)
        index.insert((0,))
        index.insert((128,))  # splits the single region, H: 0 -> 1
        before = index.store.stats.snapshot()
        index.insert((64,))  # H: 1 -> 2 doubling
        assert index.global_depths[0] >= 2
        assert index.store.stats.delta(before).writes >= 2


class TestMergingAndContraction:
    def test_delete_all_returns_to_single_cell(self):
        keys = unique(uniform_keys(300, 2, seed=9, domain=256))
        index = build(keys)
        for key in keys:
            index.delete(key)
        index.check_invariants()
        assert len(index) == 0
        assert index.directory_size == 1
        assert index.data_page_count == 0

    def test_partial_deletion_keeps_structure_sound(self):
        keys = unique(uniform_keys(300, 2, seed=10, domain=256))
        index = build(keys)
        for key in keys[::2]:
            index.delete(key)
        index.check_invariants()
        for key in keys[1::2]:
            assert key in index

    def test_sigma_shrinks_after_mass_deletion(self):
        keys = unique(uniform_keys(500, 2, seed=11, domain=256))
        index = build(keys, b=2)
        grown = index.directory_size
        for key in keys[:450]:
            index.delete(key)
        assert index.directory_size < grown
        index.check_invariants()


class TestDimensionality:
    @pytest.mark.parametrize("dims", [1, 2, 3, 4])
    def test_arbitrary_dimensions(self, dims):
        keys = unique(uniform_keys(200, dims, seed=12, domain=64))
        index = MDEH(dims, 4, widths=6)
        for i, key in enumerate(keys):
            index.insert(key, i)
        index.check_invariants()
        for i, key in enumerate(keys):
            assert index.search(key) == i
