"""End-to-end operation on a byte-level page file.

Every index runs unchanged against the :class:`FileBackend`: each read
decodes a fresh page object from its byte image, each write re-encodes.
These tests drive full insert/search/delete/range workloads through the
file — the strongest exercise of the codecs and of the library's
read-modify-write discipline.
"""

import random

import pytest

from repro import BMEHTree, GridFile, KDBTree, MDEH, MEHTree
from repro.storage import FileBackend, PageStore

ON_DISK_SCHEMES = [
    pytest.param(MDEH, id="mdeh"),
    pytest.param(MEHTree, id="meh"),
    pytest.param(BMEHTree, id="bmeh"),
    pytest.param(GridFile, id="gridfile"),
    pytest.param(KDBTree, id="kdb"),
]


def file_store(tmp_path, name):
    return PageStore(FileBackend(str(tmp_path / f"{name}.db"), page_size=8192))


def test_backends_build_identical_structures(tmp_path):
    """The same insert stream on memory and file backends must produce
    identical partitions, directory sizes and I/O ledgers — the backend
    is purely a placement concern."""
    from repro.workloads import uniform_keys, unique

    keys = unique(uniform_keys(500, 2, seed=210, domain=256))
    memory = BMEHTree(2, 4, widths=8)
    disk = BMEHTree(2, 4, widths=8, store=file_store(tmp_path, "ident"))
    for i, key in enumerate(keys):
        memory.insert(key, i)
        disk.insert(key, i)
    assert memory.directory_size == disk.directory_size
    assert memory.data_page_count == disk.data_page_count
    assert memory.store.stats.accesses == disk.store.stats.accesses
    a = sorted((c.prefixes, c.depths) for c in memory.leaf_regions())
    b = sorted((c.prefixes, c.depths) for c in disk.leaf_regions())
    assert a == b
    disk.store.close()


@pytest.mark.parametrize("cls", ON_DISK_SCHEMES)
class TestOnDisk:
    def test_churn_on_file_backend(self, cls, tmp_path):
        store = file_store(tmp_path, cls.__name__)
        index = cls(2, 4, widths=8, store=store)
        rng = random.Random(200)
        model = {}
        for step in range(400):
            if model and rng.random() < 0.3:
                key = rng.choice(list(model))
                assert index.delete(key) == model.pop(key)
            else:
                key = (rng.randrange(256), rng.randrange(256))
                if key in model:
                    continue
                index.insert(key, step)
                model[key] = step
        index.check_invariants()
        for key, value in model.items():
            assert index.search(key) == value
        got = sorted(k for k, _ in index.range_search((30, 30), (200, 220)))
        want = sorted(
            k for k in model if 30 <= k[0] <= 200 and 30 <= k[1] <= 220
        )
        assert got == want
        store.close()

    def test_pages_really_live_in_the_file(self, cls, tmp_path):
        path = tmp_path / f"{cls.__name__}.db"
        store = PageStore(FileBackend(str(path), page_size=8192))
        index = cls(2, 4, widths=8, store=store)
        for x in range(0, 256, 7):
            index.insert((x, x), x)
        store.close()
        assert path.stat().st_size > 8192  # more than the header page

    def test_fresh_copies_per_read(self, cls, tmp_path):
        """A byte backend decodes a fresh object per read; the indexes
        must not rely on object identity across operations."""
        store = file_store(tmp_path, cls.__name__)
        index = cls(2, 4, widths=8, store=store)
        index.insert((1, 2), "a")
        index.insert((200, 3), "b")
        assert index.search((1, 2)) == "a"
        assert index.search((1, 2)) == "a"  # repeated reads, fresh decodes
        index.delete((1, 2))
        assert (1, 2) not in index
        assert index.search((200, 3)) == "b"
        index.check_invariants()
        store.close()
