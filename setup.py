"""Legacy entry point so `pip install -e .` works without the `wheel`
package (this reproduction environment is offline); metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
