"""Table 3 — 2-dimensional normal (skewed) keys.

The paper's centrepiece: order preservation makes skewed keys common,
and the one-level directory's σ and ρ explode (σ = 524,288 elements,
ρ = 229 accesses/insert at b = 8) while the BMEH-tree stays small and
cheap.  This module regenerates all of Table 3.
"""

import pytest

from repro.bench import (
    PAPER_TABLES,
    format_table,
    run_table_cell,
    shape_assertions,
)
from repro.bench.harness import TABLE_EXPERIMENTS
from repro.bench.paper_data import PAGE_CAPACITIES

EXPERIMENT = TABLE_EXPERIMENTS["table3"]
SCHEMES = ("MDEH", "MEHTree", "BMEHTree")


@pytest.mark.parametrize("page_capacity", PAGE_CAPACITIES)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_table3_cell(benchmark, results, scheme, page_capacity):
    metrics = benchmark.pedantic(
        run_table_cell,
        args=(EXPERIMENT, scheme, page_capacity),
        rounds=1,
        iterations=1,
    )
    results[(scheme, page_capacity)] = metrics
    benchmark.extra_info.update(metrics.as_row())


def test_table3_report(benchmark, results, capsys):
    report = benchmark(
        format_table,
        "Table 3: 2-dimensional normal distributed keys",
        results,
        PAPER_TABLES["table3"],
    )
    with capsys.disabled():
        print("\n" + report + "\n")
    failures = shape_assertions("table3", results)
    assert not failures, "\n".join(failures)
