"""Theorem 4 — partial-range query cost.

Runs boxes of increasing selectivity against the BMEH-tree, counts the
covering cells ``n_R`` (from the induced partition), and checks the
measured disk accesses stay within the theorem's ``l * n_R`` bound.
Also exercises the partial-match special case (one dimension pinned).
"""

import numpy as np
import pytest

from repro.analysis import covering_cells, max_tree_levels, theorem4_range_bound
from repro.bench.harness import experiment_scale
from repro.core import BMEHTree, RangeQuery
from repro.workloads import DOMAIN_MAX, uniform_keys, unique

SELECTIVITIES = (0.001, 0.01, 0.05, 0.2)


@pytest.fixture(scope="module")
def built_index():
    n = max(experiment_scale() // 4, 2000)
    keys = unique(uniform_keys(n, dims=2, seed=99))
    index = BMEHTree(2, 16, widths=32)
    for key in keys:
        index.insert(key)
    return index, keys


@pytest.fixture(scope="module")
def rows():
    return {}


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
def test_range_query_cost(benchmark, built_index, rows, selectivity):
    index, keys = built_index
    rng = np.random.default_rng(int(selectivity * 1e6))
    side = int(DOMAIN_MAX * selectivity**0.5)
    lows = tuple(int(rng.integers(0, DOMAIN_MAX - side)) for _ in range(2))
    highs = tuple(lo + side for lo in lows)

    def query():
        before = index.store.stats.snapshot()
        hits = sum(1 for _ in index.range_search(lows, highs))
        accesses = index.store.stats.delta(before).accesses
        return hits, accesses

    hits, accesses = benchmark.pedantic(query, rounds=1, iterations=1)
    n_r = covering_cells(index, lows, highs)
    bound = theorem4_range_bound(n_r, 32, index.phi)
    rows[selectivity] = (hits, n_r, accesses, bound)
    benchmark.extra_info.update(
        {"hits": hits, "n_R": n_r, "accesses": accesses, "bound": bound}
    )
    assert accesses <= bound, (
        f"range query cost {accesses} exceeds Theorem 4's l*n_R = {bound}"
    )
    want = sum(
        1 for k in keys
        if lows[0] <= k[0] <= highs[0] and lows[1] <= k[1] <= highs[1]
    )
    assert hits == want


def test_partial_match_cost(benchmark, built_index, rows):
    """Partial-match: dimension 0 pinned to a band, dimension 1 free."""
    index, keys = built_index
    band = (DOMAIN_MAX // 2, DOMAIN_MAX // 2 + DOMAIN_MAX // 512)
    query = RangeQuery.box(index.widths, {0: band})

    def run():
        before = index.store.stats.snapshot()
        hits = sum(1 for _ in query.run(index))
        return hits, index.store.stats.delta(before).accesses

    hits, accesses = benchmark.pedantic(run, rounds=1, iterations=1)
    n_r = covering_cells(index, query.lows, query.highs)
    assert accesses <= theorem4_range_bound(n_r, 32, index.phi)
    want = sum(1 for k in keys if band[0] <= k[0] <= band[1])
    assert hits == want


def test_range_report(benchmark, rows, capsys):
    def render():
        lines = ["Theorem 4: range cost vs l*n_R (BMEH-tree, b=16)",
                 f"{'selectivity':>12} {'hits':>8} {'n_R':>8} {'accesses':>9} {'bound':>8}"]
        for sel, (hits, n_r, accesses, bound) in sorted(rows.items()):
            lines.append(f"{sel:>12} {hits:>8} {n_r:>8} {accesses:>9} {bound:>8}")
        return "\n".join(lines)

    report = benchmark(render)
    with capsys.disabled():
        print("\n" + report + "\n")
