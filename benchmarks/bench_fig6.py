"""Figure 6 — directory size vs. insertions, 2-d uniform keys (b = 8).

The paper's graph shows the BMEH-tree's directory growing almost
linearly and staying lowest, the one-level MDEH directory climbing in
doubling staircases, and the MEH-tree in between (worst in the paper's
run).  This bench prints the three series side by side and asserts the
growth-shape criteria: BMEH lowest at full scale and close to linear
(final size within a small factor of proportional growth from the
half-way point).
"""

import pytest

from repro.bench import format_series, growth_series
from repro.bench.harness import FIGURE_EXPERIMENTS

EXPERIMENT = FIGURE_EXPERIMENTS["fig6"]
SCHEMES = ("MDEH", "MEHTree", "BMEHTree")


@pytest.fixture(scope="module")
def curves() -> dict:
    return {}


@pytest.mark.parametrize("scheme", SCHEMES)
def test_fig6_series(benchmark, curves, scheme):
    metrics, series = benchmark.pedantic(
        growth_series,
        args=(EXPERIMENT, scheme),
        kwargs={"checkpoints": 20},
        rounds=1,
        iterations=1,
    )
    curves[scheme] = series
    benchmark.extra_info.update(metrics.as_row())


def test_fig6_report(benchmark, curves, capsys):
    series = [curves[s] for s in SCHEMES if s in curves]
    report = benchmark(
        format_series,
        "Figure 6: directory growth, 2-d uniform keys, b = 8",
        series,
    )
    with capsys.disabled():
        print("\n" + report + "\n")
    if len(series) == len(SCHEMES):
        final = {s.scheme: s.directory_sizes[-1] for s in series}
        assert final["BMEHTree"] == min(final.values()), final
        # near-linear growth: doubling the keys from the midpoint should
        # not much more than double the BMEH directory.
        bmeh = curves["BMEHTree"]
        mid = bmeh.directory_sizes[len(bmeh.directory_sizes) // 2]
        assert bmeh.directory_sizes[-1] <= 3 * mid, (mid, bmeh.directory_sizes[-1])
