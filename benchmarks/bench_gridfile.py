"""Extension bench — related structures against the paper's schemes.

§1 positions the BMEH-tree within the wider design space; this bench
measures the two most important relatives on the paper's workloads:

* the **grid file** (Nievergelt et al. 1984): its directory is the
  *product* of per-axis scale refinements, so skew on any one axis
  inflates whole hyperplanes of directory blocks;
* the **K-D-B-tree** (Robinson 1981): the BMEH-tree's structural
  ancestor — balanced like the BMEH-tree, but its region pages store
  explicit boxes instead of hash-addressed cells.
"""

import pytest

from repro.analysis import measure_run
from repro.bench.harness import TABLE_EXPERIMENTS, experiment_scale, make_index
from repro.core import BMEHTree
from repro.gridfile import GridFile
from repro.kdb import KDBTree
from repro.workloads import clustered_keys, unique

WORKLOADS = ("table2", "table3")  # uniform / normal


@pytest.fixture(scope="module")
def rows():
    return {}


@pytest.mark.parametrize("experiment", WORKLOADS)
def test_gridfile_cell(benchmark, rows, experiment):
    exp = TABLE_EXPERIMENTS[experiment]

    def build():
        index = GridFile(exp.dims, 8, widths=31)
        return measure_run(index, exp.keys())[0]

    metrics = benchmark.pedantic(build, rounds=1, iterations=1)
    rows[("GridFile", experiment)] = metrics
    benchmark.extra_info.update(metrics.as_row())
    assert metrics.successful_search_reads == 2.0  # two-access principle


@pytest.mark.parametrize("experiment", WORKLOADS)
@pytest.mark.parametrize("scheme", ("MDEH", "BMEHTree"))
def test_reference_cell(benchmark, rows, scheme, experiment):
    exp = TABLE_EXPERIMENTS[experiment]

    def build():
        index = make_index(scheme, exp.dims, 8)
        return measure_run(index, exp.keys())[0]

    metrics = benchmark.pedantic(build, rounds=1, iterations=1)
    rows[(scheme, experiment)] = metrics
    benchmark.extra_info.update(metrics.as_row())


@pytest.mark.parametrize("experiment", WORKLOADS)
def test_kdb_cell(benchmark, rows, experiment):
    exp = TABLE_EXPERIMENTS[experiment]

    def build():
        index = KDBTree(exp.dims, 8, widths=31)
        return measure_run(index, exp.keys())[0], index

    metrics, index = benchmark.pedantic(build, rounds=1, iterations=1)
    rows[("KDBTree", experiment)] = metrics
    benchmark.extra_info.update(metrics.as_row())
    index.check_invariants()
    # Balanced like the BMEH-tree: λ = height (root pinned).
    assert metrics.successful_search_reads == pytest.approx(index.height())


def test_clustered_cells(benchmark, rows):
    """Clustered data (the geographic workload of §1) makes the grid
    file's product structure pay: each cluster refines whole rows and
    columns of the directory."""
    n = max(experiment_scale() // 5, 2000)
    keys = unique(clustered_keys(n, dims=2, seed=3))

    def build():
        results = {}
        for name, cls in (("GridFile", GridFile), ("BMEHTree", BMEHTree)):
            index = cls(2, 8, widths=31)
            results[name] = measure_run(index, keys)[0]
        return results

    results = benchmark.pedantic(build, rounds=1, iterations=1)
    for name, metrics in results.items():
        rows[(name, "clustered")] = metrics
    # The decisive comparison: the balanced tree's directory is markedly
    # smaller than the grid product on clustered data.
    assert (
        results["BMEHTree"].directory_size
        < results["GridFile"].directory_size
    )


def test_gridfile_report(benchmark, rows, capsys):
    def render():
        lines = ["grid file vs hashing directories (b=8)",
                 f"{'scheme':>10} {'workload':>9} {'sigma':>10} {'rho':>8} {'lambda':>8}"]
        for (scheme, workload), m in sorted(rows.items()):
            lines.append(
                f"{scheme:>10} {workload:>9} {m.directory_size:>10} "
                f"{m.insertion_accesses:>8.3f} {m.successful_search_reads:>8.3f}"
            )
        return "\n".join(lines)

    report = benchmark(render)
    with capsys.disabled():
        print("\n" + report + "\n")
    skewed_grid = rows.get(("GridFile", "table3"))
    skewed_bmeh = rows.get(("BMEHTree", "table3"))
    if skewed_grid and skewed_bmeh and skewed_grid.keys_inserted >= 20_000:
        # At the paper's scale the balanced tree also beats the grid
        # file on the (milder) normal skew.
        assert skewed_bmeh.directory_size < skewed_grid.directory_size
