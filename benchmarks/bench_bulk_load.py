"""Extension bench — bottom-up bulk loading vs incremental insertion.

The loader computes the final partition directly (order-independent for
pure insertions) and writes every page and directory node exactly once;
this bench quantifies the I/O and wall-clock savings and verifies the
structural equivalence at benchmark scale.
"""

import pytest

from repro.bench.harness import TABLE_EXPERIMENTS, experiment_scale
from repro.core import BMEHTree, bulk_load


@pytest.fixture(scope="module")
def rows():
    return {}


@pytest.mark.parametrize("workload", ("table2", "table3"))
def test_incremental_build(benchmark, rows, workload):
    keys = TABLE_EXPERIMENTS[workload].keys(max(experiment_scale() // 4, 2000))

    def build():
        index = BMEHTree(2, 8, widths=31)
        for i, key in enumerate(keys):
            index.insert(key, i)
        return index

    index = benchmark.pedantic(build, rounds=1, iterations=1)
    rows[("incremental", workload)] = (
        index.store.stats.accesses,
        index.node_count,
        sorted((c.prefixes, c.depths) for c in index.leaf_regions()),
    )
    benchmark.extra_info["accesses"] = index.store.stats.accesses


@pytest.mark.parametrize("workload", ("table2", "table3"))
def test_bulk_build(benchmark, rows, workload):
    keys = TABLE_EXPERIMENTS[workload].keys(max(experiment_scale() // 4, 2000))
    items = [(key, i) for i, key in enumerate(keys)]

    def build():
        return bulk_load(BMEHTree(2, 8, widths=31), items)

    index = benchmark.pedantic(build, rounds=1, iterations=1)
    index.check_invariants()
    rows[("bulk", workload)] = (
        index.store.stats.accesses,
        index.node_count,
        sorted((c.prefixes, c.depths) for c in index.leaf_regions()),
    )
    benchmark.extra_info["accesses"] = index.store.stats.accesses


def test_bulk_report(benchmark, rows, capsys):
    def render():
        lines = ["bulk loading vs incremental insertion (BMEH-tree, b=8)",
                 f"{'workload':>9} {'mode':>12} {'accesses':>10} {'nodes':>7}"]
        for (mode, workload), (accesses, nodes, _) in sorted(rows.items()):
            lines.append(f"{workload:>9} {mode:>12} {accesses:>10} {nodes:>7}")
        return "\n".join(lines)

    report = benchmark(render)
    with capsys.disabled():
        print("\n" + report + "\n")
    for workload in ("table2", "table3"):
        inc = rows.get(("incremental", workload))
        blk = rows.get(("bulk", workload))
        if inc and blk:
            assert blk[2] == inc[2], "partitions diverged"
            assert blk[0] * 3 < inc[0], "bulk loading saved too little I/O"
