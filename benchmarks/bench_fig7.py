"""Figure 7 — directory size vs. insertions, 2-d normal keys (b = 8).

The skewed-workload growth curves: the one-level directory doubles away
from the pack while the BMEH-tree keeps near-linear growth — the
robustness claim in the paper's title.
"""

import pytest

from repro.bench import format_series, growth_series
from repro.bench.harness import FIGURE_EXPERIMENTS

EXPERIMENT = FIGURE_EXPERIMENTS["fig7"]
SCHEMES = ("MDEH", "MEHTree", "BMEHTree")


@pytest.fixture(scope="module")
def curves() -> dict:
    return {}


@pytest.mark.parametrize("scheme", SCHEMES)
def test_fig7_series(benchmark, curves, scheme):
    metrics, series = benchmark.pedantic(
        growth_series,
        args=(EXPERIMENT, scheme),
        kwargs={"checkpoints": 20},
        rounds=1,
        iterations=1,
    )
    curves[scheme] = series
    benchmark.extra_info.update(metrics.as_row())


def test_fig7_report(benchmark, curves, capsys):
    series = [curves[s] for s in SCHEMES if s in curves]
    report = benchmark(
        format_series,
        "Figure 7: directory growth, 2-d normal keys, b = 8",
        series,
    )
    with capsys.disabled():
        print("\n" + report + "\n")
    if len(series) == len(SCHEMES):
        final = {s.scheme: s.directory_sizes[-1] for s in series}
        assert final["BMEHTree"] == min(final.values()), final
        # Skew must blow the one-level directory an order of magnitude
        # past the balanced tree.
        assert final["MDEH"] >= 10 * final["BMEHTree"], final
        bmeh = curves["BMEHTree"]
        mid = bmeh.directory_sizes[len(bmeh.directory_sizes) // 2]
        assert bmeh.directory_sizes[-1] <= 3 * mid, (mid, bmeh.directory_sizes[-1])
