"""Ablation — design-choice knobs DESIGN.md calls out.

1. Node growth policy: the pseudocode's slot-budget test (``total``)
   vs. the stricter per-axis ξ caps of §3.1 (``per_dim``).
2. MDEH directory update accounting: per-element (the paper's
   "resetting half the pointers" cost) vs. per-page.
"""

import pytest

from repro.analysis import measure_run
from repro.bench.harness import experiment_scale
from repro.core import BMEHTree, MDEH
from repro.workloads import normal_keys, unique


@pytest.fixture(scope="module")
def keys():
    n = max(experiment_scale() // 4, 2000)
    return unique(normal_keys(n, dims=2, seed=55))


@pytest.fixture(scope="module")
def rows():
    return {}


@pytest.mark.parametrize("policy", ("total", "per_dim"))
def test_node_policy_cell(benchmark, keys, rows, policy):
    def build():
        index = BMEHTree(2, 8, widths=32, node_policy=policy)
        return measure_run(index, keys)[0]

    metrics = benchmark.pedantic(build, rounds=1, iterations=1)
    rows[f"bmeh/{policy}"] = metrics
    benchmark.extra_info.update(metrics.as_row())


@pytest.mark.parametrize("granularity", ("element", "page"))
def test_mdeh_accounting_cell(benchmark, keys, rows, granularity):
    def build():
        index = MDEH(
            2, 8, widths=32,
            element_granular_updates=(granularity == "element"),
        )
        return measure_run(index, keys)[0]

    metrics = benchmark.pedantic(build, rounds=1, iterations=1)
    rows[f"mdeh/{granularity}"] = metrics
    benchmark.extra_info.update(metrics.as_row())


def test_split_policy_report(benchmark, rows, capsys):
    def render():
        lines = ["split/accounting ablation (2-d normal keys, b=8)",
                 f"{'variant':>16} {'sigma':>10} {'rho':>10} {'lambda':>8}"]
        for name, m in rows.items():
            lines.append(
                f"{name:>16} {m.directory_size:>10} "
                f"{m.insertion_accesses:>10.3f} {m.successful_search_reads:>8.3f}"
            )
        return "\n".join(lines)

    report = benchmark(render)
    with capsys.disabled():
        print("\n" + report + "\n")
    if "mdeh/element" in rows and "mdeh/page" in rows:
        # Accounting granularity changes costs, never the structure.
        assert (
            rows["mdeh/element"].directory_size
            == rows["mdeh/page"].directory_size
        )
        assert (
            rows["mdeh/element"].insertion_accesses
            >= rows["mdeh/page"].insertion_accesses
        )
