"""Theorems 2 and 3 — adversarial worst-case insertion.

Inserts keys agreeing on all high-order bits (the proof's construction:
the (b+1)-st key forces a split cascade down the shared prefix) and
checks the measured node splits and directory accesses stay within the
stated bounds, across several (w, φ) settings.
"""

import pytest

from repro.analysis import (
    max_tree_levels,
    theorem2_worst_case_splits,
    theorem3_access_bound,
)
from repro.core import BMEHTree
from repro.core.hashtree import default_xi
from repro.workloads import adversarial_common_prefix_keys

CASES = [
    # (width per dim, phi, page capacity)
    (12, 4, 4),
    (16, 6, 8),
    (24, 6, 8),
]


@pytest.fixture(scope="module")
def rows():
    return {}


@pytest.mark.parametrize("width,phi,b", CASES)
def test_worst_case_insert(benchmark, rows, width, phi, b):
    keys = adversarial_common_prefix_keys(4 * b, dims=2, width=width)

    def build_and_probe():
        index = BMEHTree(2, b, widths=width, xi=default_xi(2, phi))
        worst_splits = 0
        worst_accesses = 0
        for key in keys:
            nodes_before = index.node_count
            stats_before = index.store.stats.snapshot()
            index.insert(key)
            worst_splits = max(worst_splits, index.node_count - nodes_before)
            worst_accesses = max(
                worst_accesses, index.store.stats.delta(stats_before).accesses
            )
        index.check_invariants()
        return index, worst_splits, worst_accesses

    index, splits, accesses = benchmark.pedantic(
        build_and_probe, rounds=1, iterations=1
    )
    # The tree addresses 2*width bits in total across both dimensions.
    total_width = 2 * width
    split_bound = theorem2_worst_case_splits(total_width, phi)
    rows[(width, phi, b)] = (splits, split_bound, accesses)
    benchmark.extra_info.update(
        {"worst_splits": splits, "theorem2_bound": split_bound,
         "worst_accesses": accesses}
    )
    assert splits <= split_bound, (splits, split_bound)
    assert index.height() <= max_tree_levels(total_width, phi)
    # Theorem 3 bounds directory-node accesses; our ledger also counts
    # the data-page traffic of the cascade's page rehashes, so allow the
    # envelope plus one page touch per worst-case split.
    assert accesses <= theorem3_access_bound(total_width, phi) + 2 * split_bound + 4


def test_worst_case_report(benchmark, rows, capsys):
    def render():
        lines = ["Theorem 2/3: adversarial common-prefix insertions",
                 f"{'(w, phi, b)':>14} {'worst splits':>13} {'bound':>7} {'worst accesses':>15}"]
        for case, (splits, bound, accesses) in sorted(rows.items()):
            lines.append(f"{str(case):>14} {splits:>13} {bound:>7} {accesses:>15}")
        return "\n".join(lines)

    report = benchmark(render)
    with capsys.disabled():
        print("\n" + report + "\n")
