"""Table 4 — 3-dimensional uniform keys (ξ = (2, 2, 2), φ = 6)."""

import pytest

from repro.bench import (
    PAPER_TABLES,
    format_table,
    run_table_cell,
    shape_assertions,
)
from repro.bench.harness import TABLE_EXPERIMENTS
from repro.bench.paper_data import PAGE_CAPACITIES

EXPERIMENT = TABLE_EXPERIMENTS["table4"]
SCHEMES = ("MDEH", "MEHTree", "BMEHTree")


@pytest.mark.parametrize("page_capacity", PAGE_CAPACITIES)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_table4_cell(benchmark, results, scheme, page_capacity):
    metrics = benchmark.pedantic(
        run_table_cell,
        args=(EXPERIMENT, scheme, page_capacity),
        rounds=1,
        iterations=1,
    )
    results[(scheme, page_capacity)] = metrics
    benchmark.extra_info.update(metrics.as_row())


def test_table4_report(benchmark, results, capsys):
    report = benchmark(
        format_table,
        "Table 4: 3-dimensional uniform distributed keys",
        results,
        PAPER_TABLES["table4"],
    )
    with capsys.disabled():
        print("\n" + report + "\n")
    failures = shape_assertions("table4", results)
    assert not failures, "\n".join(failures)
