"""Ablation — node bit budget φ.

§3.1: the tree has at most ``l = ceil(w/φ)`` levels, so φ trades node
size (2^φ slots per node page) against search depth.  The paper fixes
φ = 6 "to allow a fast build up of the number of directory levels"; this
bench sweeps φ and reports directory size, height and search cost.
"""

import pytest

from repro.analysis import max_tree_levels, measure_run
from repro.bench.harness import experiment_scale
from repro.core import BMEHTree
from repro.core.hashtree import default_xi
from repro.workloads import uniform_keys, unique

PHIS = (4, 6, 8, 10)


@pytest.fixture(scope="module")
def keys():
    n = max(experiment_scale() // 4, 2000)
    return unique(uniform_keys(n, dims=2, seed=77))


@pytest.fixture(scope="module")
def rows():
    return {}


@pytest.mark.parametrize("phi", PHIS)
def test_phi_cell(benchmark, keys, rows, phi):
    def build():
        index = BMEHTree(2, 8, widths=32, xi=default_xi(2, phi))
        return measure_run(index, keys)[0], index

    metrics, index = benchmark.pedantic(build, rounds=1, iterations=1)
    rows[phi] = metrics
    benchmark.extra_info.update(metrics.as_row())
    # The balance guarantee must hold at every phi.
    assert metrics.extra["height"] <= max_tree_levels(32, phi)


def test_phi_report(benchmark, rows, capsys):
    def render():
        lines = ["phi ablation (BMEH-tree, 2-d uniform, b=8)",
                 f"{'phi':>4} {'sigma':>10} {'height':>7} {'lambda':>8} {'rho':>8}"]
        for phi, m in sorted(rows.items()):
            lines.append(
                f"{phi:>4} {m.directory_size:>10} {m.extra['height']:>7} "
                f"{m.successful_search_reads:>8.3f} {m.insertion_accesses:>8.3f}"
            )
        return "\n".join(lines)

    report = benchmark(render)
    with capsys.disabled():
        print("\n" + report + "\n")
    if len(rows) == len(PHIS):
        # Larger nodes => shallower trees (weakly) and cheaper searches.
        heights = [rows[phi].extra["height"] for phi in PHIS]
        assert heights == sorted(heights, reverse=True) or len(set(heights)) <= 2
