"""Table 2 — 2-dimensional uniform keys.

Regenerates every cell of the paper's Table 2: λ, λ′, ρ, α, σ for
MDEH / MEH-tree / BMEH-tree at b ∈ {8, 16, 32, 64}, N = 40,000 uniform
2-d keys, and prints them next to the published values.
"""

import pytest

from repro.bench import (
    PAPER_TABLES,
    format_table,
    run_table_cell,
    shape_assertions,
)
from repro.bench.harness import TABLE_EXPERIMENTS
from repro.bench.paper_data import PAGE_CAPACITIES

EXPERIMENT = TABLE_EXPERIMENTS["table2"]
SCHEMES = ("MDEH", "MEHTree", "BMEHTree")


@pytest.mark.parametrize("page_capacity", PAGE_CAPACITIES)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_table2_cell(benchmark, results, scheme, page_capacity):
    metrics = benchmark.pedantic(
        run_table_cell,
        args=(EXPERIMENT, scheme, page_capacity),
        rounds=1,
        iterations=1,
    )
    results[(scheme, page_capacity)] = metrics
    benchmark.extra_info.update(metrics.as_row())


def test_table2_report(benchmark, results, capsys):
    report = benchmark(
        format_table,
        "Table 2: 2-dimensional uniform keys",
        results,
        PAPER_TABLES["table2"],
    )
    with capsys.disabled():
        print("\n" + report + "\n")
    failures = shape_assertions("table2", results)
    assert not failures, "\n".join(failures)
