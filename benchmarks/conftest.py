"""Shared fixtures for the benchmark suite.

Each table module accumulates its per-cell measurements into a
module-scoped dict; a final report test renders the paper-vs-measured
table and asserts the shape criteria.  ``REPRO_N`` scales the runs
(default: the paper's 40,000 insertions per run).
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="module")
def results() -> dict:
    """Accumulator mapping (scheme, b) -> RunMetrics within one module."""
    return {}


def pytest_report_header(config):
    from repro.bench import experiment_scale

    return [f"repro experiment scale: N = {experiment_scale()} insertions/run"]
