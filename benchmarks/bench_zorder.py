"""Extension bench — z-order mapping vs native multidimensional schemes.

The paper's §1 surveys the alternative of mapping multidimensional keys
into one dimension (Orenstein-Merrett, its reference [13]).  Exact-match
cost matches the one-level scheme (two accesses), but a range box
shatters into many z-intervals, so range retrieval reads more pages than
a native directory does.  This bench quantifies both sides.
"""

import numpy as np
import pytest

from repro import BMEHTree, ZOrderIndex
from repro.analysis import measure_search_cost
from repro.bench.harness import experiment_scale
from repro.workloads import DOMAIN_MAX, uniform_keys, unique


@pytest.fixture(scope="module")
def built():
    n = max(experiment_scale() // 4, 2000)
    keys = unique(uniform_keys(n, dims=2, seed=180))
    indexes = {}
    for name, cls in (("ZOrderIndex", ZOrderIndex), ("BMEHTree", BMEHTree)):
        index = cls(2, 16, widths=31)
        for key in keys:
            index.insert(key)
        indexes[name] = index
    return keys, indexes


@pytest.fixture(scope="module")
def rows():
    return {}


def test_exact_match_costs(benchmark, built, rows):
    keys, indexes = built

    def probe():
        return {
            name: measure_search_cost(index, keys[:1000])
            for name, index in indexes.items()
        }

    costs = benchmark.pedantic(probe, rounds=1, iterations=1)
    rows["exact"] = costs
    # The 1-d mapping keeps the two-access principle.
    assert costs["ZOrderIndex"] == 2.0


@pytest.mark.parametrize("selectivity", (0.01, 0.05))
def test_range_costs(benchmark, built, rows, selectivity):
    keys, indexes = built
    rng = np.random.default_rng(int(selectivity * 1e6))
    side = int(DOMAIN_MAX * selectivity**0.5)
    lows = tuple(int(rng.integers(0, DOMAIN_MAX - side)) for _ in range(2))
    highs = tuple(lo + side for lo in lows)

    def run():
        out = {}
        for name, index in indexes.items():
            before = index.store.stats.snapshot()
            hits = sum(1 for _ in index.range_search(lows, highs))
            out[name] = (hits, index.store.stats.delta(before).reads)
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows[f"range-{selectivity}"] = result
    hits = {name: h for name, (h, _) in result.items()}
    assert len(set(hits.values())) == 1, "schemes disagree on the answer"
    # The shattered z-intervals cost at least as much as the native walk.
    assert result["ZOrderIndex"][1] >= result["BMEHTree"][1]


def test_zorder_report(benchmark, rows, capsys):
    def render():
        lines = ["z-order mapping vs BMEH-tree (uniform keys, b=16)"]
        for query, data in sorted(rows.items()):
            if query == "exact":
                lines.append(
                    f"  exact-match reads: "
                    + ", ".join(f"{n}={c:.2f}" for n, c in data.items())
                )
            else:
                lines.append(
                    f"  {query}: "
                    + ", ".join(
                        f"{n}: {h} hits / {r} reads"
                        for n, (h, r) in data.items()
                    )
                )
        return "\n".join(lines)

    report = benchmark(render)
    with capsys.disabled():
        print("\n" + report + "\n")
