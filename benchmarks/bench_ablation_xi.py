"""Ablation — splitting the node budget φ across dimensions (ξ shapes).

The paper spreads φ evenly (ξ = (3,3) for d = 2).  Asymmetric budgets
bias which dimension a node can refine before splitting; with ξ_j = 1
everywhere the structure degenerates into the conclusion's balanced
binary quadtree.  This bench compares shapes on a workload that is
skewed on one dimension only.
"""

import pytest

from repro.analysis import measure_run
from repro.bench.harness import experiment_scale
from repro.core import BMEHTree, BalancedBinaryTrie
from repro.workloads import normal_keys, uniform_keys, unique

SHAPES = {
    "xi=(3,3)": (3, 3),
    "xi=(4,2)": (4, 2),
    "xi=(2,4)": (2, 4),
    "xi=(5,1)": (5, 1),
}


@pytest.fixture(scope="module")
def keys():
    n = max(experiment_scale() // 4, 2000)
    # Skew dimension 0 (normal), keep dimension 1 uniform.
    skewed = normal_keys(n, dims=1, seed=31)
    flat = uniform_keys(n, dims=1, seed=32)
    return unique([(a[0], b[0]) for a, b in zip(skewed, flat)])


@pytest.fixture(scope="module")
def rows():
    return {}


@pytest.mark.parametrize("shape", sorted(SHAPES))
def test_xi_cell(benchmark, keys, rows, shape):
    def build():
        # per_dim: the per-axis budgets must actually bind, otherwise
        # the slot pool is fungible and every shape behaves identically.
        index = BMEHTree(2, 8, widths=32, xi=SHAPES[shape],
                         node_policy="per_dim")
        return measure_run(index, keys)[0]

    metrics = benchmark.pedantic(build, rounds=1, iterations=1)
    rows[shape] = metrics
    benchmark.extra_info.update(metrics.as_row())


def test_xi_quadtree_cell(benchmark, keys, rows):
    """ξ = (1,1): the balanced binary quadtree of the conclusion."""

    def build():
        index = BalancedBinaryTrie(2, 8, widths=32)
        return measure_run(index, keys)[0]

    metrics = benchmark.pedantic(build, rounds=1, iterations=1)
    rows["quadtree"] = metrics
    benchmark.extra_info.update(metrics.as_row())


def test_xi_report(benchmark, rows, capsys):
    def render():
        lines = ["xi ablation (BMEH-tree, dim-0-skewed keys, b=8)",
                 f"{'shape':>10} {'sigma':>10} {'height':>7} {'lambda':>8} {'rho':>8}"]
        for shape, m in rows.items():
            lines.append(
                f"{shape:>10} {m.directory_size:>10} {m.extra['height']:>7} "
                f"{m.successful_search_reads:>8.3f} {m.insertion_accesses:>8.3f}"
            )
        return "\n".join(lines)

    report = benchmark(render)
    with capsys.disabled():
        print("\n" + report + "\n")
    if "quadtree" in rows and "xi=(3,3)" in rows:
        # One bit per axis per level => a much taller tree.
        assert rows["quadtree"].extra["height"] > rows["xi=(3,3)"].extra["height"]
